// Stage one of the paper's two-stage analytics (§2.2): reduce a day of raw
// flow records to per-day/per-subscription aggregates. Everything the
// figure-level analytics need is collected in one pass:
//   - per-subscriber traffic and per-service traffic (Figs. 2,3,5,6,7,9)
//   - 10-minute downlink bins per access technology (Fig. 4)
//   - web-protocol byte counters (Fig. 8)
//   - per-service min-RTT samples (Fig. 10)
//   - server-IP / ASN / domain observations (Fig. 11)
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "core/time.hpp"
#include "core/types.hpp"
#include "exec/record_batch.hpp"
#include "flow/record.hpp"
#include "services/catalog.hpp"

namespace edgewatch::analytics {

inline constexpr std::size_t kWebProtocolCount =
    static_cast<std::size_t>(dpi::WebProtocol::kFbZero) + 1;
inline constexpr std::size_t kTimeBinsPerDay = 144;  // 10-minute bins (§3.2)

/// Capture-quality accounting for one civil day, produced by the runtime
/// supervision layer (runtime::Supervisor) and threaded into the day's
/// aggregate so downstream figures are corrected, never silently wrong:
/// when the probe shed load under pressure, every shed frame is *recorded*
/// here, and offered == ingested + shed + quarantined always reconciles.
struct CaptureQuality {
  std::uint64_t frames_offered = 0;      ///< Everything the capture layer handed us.
  std::uint64_t frames_ingested = 0;     ///< Fully processed by a probe shard.
  std::uint64_t frames_shed = 0;         ///< Dropped by degradation sampling/backpressure.
  std::uint64_t frames_quarantined = 0;  ///< Poison frames captured to the quarantine log.

  /// True when the day saw every offered frame (the paper's normal state:
  /// "no traffic sampling is performed", §2.1).
  [[nodiscard]] bool complete() const noexcept {
    return frames_shed == 0 && frames_quarantined == 0;
  }
  /// Multiplicative volume correction for figures over this day's records:
  /// offered / ingested (1.0 when complete; only shed load is corrected
  /// for — quarantined frames are inspectable, not extrapolatable).
  [[nodiscard]] double correction_factor() const noexcept {
    const std::uint64_t kept = frames_ingested;
    if (kept == 0 || frames_shed == 0) return 1.0;
    return static_cast<double>(kept + frames_shed) / static_cast<double>(kept);
  }
  [[nodiscard]] bool reconciles() const noexcept {
    return frames_offered == frames_ingested + frames_shed + frames_quarantined;
  }

  void merge(const CaptureQuality& other) noexcept {
    frames_offered += other.frames_offered;
    frames_ingested += other.frames_ingested;
    frames_shed += other.frames_shed;
    frames_quarantined += other.frames_quarantined;
  }

  bool operator==(const CaptureQuality&) const noexcept = default;
};

/// The §3 definition of an *active* subscriber.
struct ActivityCriteria {
  std::uint64_t min_flows = 10;
  std::uint64_t min_down_bytes = 15'000;
  std::uint64_t min_up_bytes = 5'000;
};

struct ServiceDayTraffic {
  std::uint64_t flows = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;

  [[nodiscard]] std::uint64_t total() const noexcept { return bytes_up + bytes_down; }

  void merge(const ServiceDayTraffic& other) noexcept {
    flows += other.flows;
    bytes_up += other.bytes_up;
    bytes_down += other.bytes_down;
  }
};

/// Per-service TCP health counters for the day (downstream direction —
/// where loss hurts the subscriber).
struct ServiceDayHealth {
  std::uint64_t packets = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t out_of_order = 0;

  [[nodiscard]] double retransmission_rate() const noexcept {
    return packets ? static_cast<double>(retransmits) / static_cast<double>(packets) : 0.0;
  }

  void merge(const ServiceDayHealth& other) noexcept {
    packets += other.packets;
    retransmits += other.retransmits;
    out_of_order += other.out_of_order;
  }
};

/// One subscription's day.
struct SubscriberDay {
  flow::AccessTech access = flow::AccessTech::kAdsl;
  std::uint64_t flows = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::array<ServiceDayTraffic, services::kServiceCount> per_service{};

  [[nodiscard]] bool active(const ActivityCriteria& c = {}) const noexcept {
    return flows >= c.min_flows && bytes_down > c.min_down_bytes && bytes_up > c.min_up_bytes;
  }
  [[nodiscard]] const ServiceDayTraffic& service(services::ServiceId id) const noexcept {
    return per_service[static_cast<std::size_t>(id)];
  }

  void merge(const SubscriberDay& other) noexcept {
    access = other.access;
    flows += other.flows;
    bytes_up += other.bytes_up;
    bytes_down += other.bytes_down;
    for (std::size_t s = 0; s < per_service.size(); ++s) per_service[s].merge(other.per_service[s]);
  }
};

/// Per-server-IP observations for the infrastructure analysis.
struct IpDayStats {
  std::uint32_t service_mask = 0;  ///< Bit i set: ServiceId(i) used this IP.
  std::uint64_t bytes = 0;
  [[nodiscard]] bool serves(services::ServiceId id) const noexcept {
    return (service_mask >> static_cast<unsigned>(id)) & 1u;
  }
  /// More than one named (non-Other) service on the same address?
  [[nodiscard]] bool shared() const noexcept {
    const std::uint32_t named =
        service_mask & ((1u << services::kNamedServiceCount) - 1u);
    return (named & (named - 1)) != 0;
  }

  void merge(const IpDayStats& other) noexcept {
    service_mask |= other.service_mask;
    bytes += other.bytes;
  }
};

/// Orders (service, domain) keys; transparent so the aggregation hot path
/// can probe with a string_view instead of materializing a std::string.
struct DomainKeyLess {
  using is_transparent = void;
  template <typename A, typename B>
  [[nodiscard]] bool operator()(const A& a, const B& b) const noexcept {
    if (a.first != b.first) return a.first < b.first;
    return std::string_view(a.second) < std::string_view(b.second);
  }
};

struct DayAggregate {
  core::CivilDate date;
  core::FlatHashMap<core::IPv4Address, SubscriberDay, core::IPv4AddressHash> subscribers;
  /// Up+down L4 bytes per web protocol (index = WebProtocol).
  std::array<std::uint64_t, kWebProtocolCount> web_bytes{};
  /// Downlink bytes per 10-min bin, split by access technology.
  std::array<std::array<double, kTimeBinsPerDay>, 2> downlink_bins{};
  /// Per-service per-flow minimum RTT samples, in milliseconds.
  std::array<std::vector<double>, services::kServiceCount> rtt_min_ms;
  /// Per-service downstream TCP health.
  std::array<ServiceDayHealth, services::kServiceCount> health{};
  /// Per server address: which services used it and how many bytes.
  core::FlatHashMap<core::IPv4Address, IpDayStats, core::IPv4AddressHash> server_ips;
  /// (service, second-level domain) -> bytes (Fig. 11 bottom). Ordered so
  /// report output is deterministic; transparent comparison keeps the
  /// per-flow update allocation-free once a domain has been seen.
  std::map<std::pair<services::ServiceId, std::string>, std::uint64_t, DomainKeyLess>
      domain_bytes;
  /// Named-but-unclassified traffic: the rule-curation worklist of §2.3
  /// ("our team has continuously monitored the most common server domain
  /// names seen in the network").
  std::map<std::string, std::uint64_t, std::less<>> unclassified_domain_bytes;
  /// What fraction of the day's traffic this aggregate actually saw
  /// (degradation shed-accounting; default-constructed == assumed
  /// complete). Set from runtime::Supervisor's per-day report.
  CaptureQuality capture;

  [[nodiscard]] std::size_t total_subscribers() const noexcept { return subscribers.size(); }
  [[nodiscard]] std::size_t active_subscribers(const ActivityCriteria& c = {}) const;
  [[nodiscard]] std::uint64_t total_web_bytes() const noexcept;

  /// Merge another aggregate for the same civil day: another PoP's (paper
  /// §2.1: two vantage points feed the same data lake) or a parallel
  /// worker's partial over a slice of the day's blocks. Commutative and
  /// associative except for rtt_min_ms sample order, which is append-order
  /// — merge partials in block order to reproduce the serial stream (the
  /// figure-level distributions sort, so figures are order-insensitive
  /// either way).
  void merge(const DayAggregate& other);
};

/// Builds a DayAggregate from a stream of flow records.
class DayAggregator {
 public:
  explicit DayAggregator(core::CivilDate date,
                         const services::ServiceCatalog& catalog =
                             services::ServiceCatalog::standard());

  void add(const flow::FlowRecord& record);

  /// Batch-at-a-time counterpart of add(): consumes one RecordBatch from
  /// the lake's batch scan path and produces *bit-identical* aggregates to
  /// feeding the same rows through add() one by one (rows are visited in
  /// stream order, so even the floating-point bins and the RTT sample
  /// order match). The win over the row path: service classification runs
  /// once per *dictionary entry* instead of once per row, and no FlowRecord
  /// — no string — is ever materialized. Requires the batch to carry at
  /// least the kDayAggregate projection (a narrower batch aggregates the
  /// zeros the row path would have seen, same as add()).
  void add_batch(const exec::RecordBatch& batch);

  /// Hand over the finished aggregate (the aggregator is then empty).
  [[nodiscard]] DayAggregate take() &&;
  [[nodiscard]] const DayAggregate& current() const noexcept { return agg_; }

 private:
  const services::ServiceCatalog& catalog_;
  DayAggregate agg_;
  // add_batch scratch (reused across batches): per-dictionary-entry
  // classification and second-level-domain caches.
  std::vector<services::ServiceId> dict_service_;
  std::vector<std::string_view> dict_sld_;
};

/// "facebook.com" from "edge-star-shv-01-mxp1.facebook.com"; keeps known
/// multi-part public suffixes whole (co.uk-style endings are not needed for
/// the study's domains, but akamaihd.net must yield akamaihd.net).
/// Returns a subrange of `host` — no allocation; copy if it must outlive
/// the argument.
[[nodiscard]] std::string_view second_level_domain(std::string_view host);

}  // namespace edgewatch::analytics
