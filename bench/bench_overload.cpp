// Overload-degradation harness (run by scripts/bench.sh). Measures the
// resilient runtime's shed behavior as offered load climbs past what the
// shard workers can drain. The load axis is the ring capacity: the same
// traffic mix is offered against progressively smaller rings, so each step
// raises offered load *relative to drain headroom* — the quantity the
// watermark state machine actually reacts to (burst-rate knobs like worker
// slowdown are meaningless on a single-core runner where the feeder
// outruns the workers regardless). Per level the bench records
//
//   - shed_rate        (shed frames / offered frames)
//   - terminal state   (Healthy / Degraded / Shedding) and sample shift
//   - the reconciliation check offered == ingested + shed + quarantined,
//     which must hold EXACTLY at every load level — degradation must never
//     lose count of a frame (exit code 2 if any level fails it).
//
// Results merge into BENCH_pipeline.json via scripts/bench.sh. This bench
// asserts accounting, not throughput: the numbers of interest are ratios,
// so a noisy CI box still produces a meaningful curve.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "runtime/health.hpp"
#include "runtime/supervisor.hpp"
#include "storage/datalake.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<ew::net::Frame> make_traffic_mix(int conversations) {
  std::vector<ew::net::Frame> frames;
  for (int i = 0; i < conversations; ++i) {
    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, static_cast<std::uint8_t>((i / 250) % 64),
                                        static_cast<std::uint8_t>(i / 250 % 250),
                                        static_cast<std::uint8_t>(i % 250 + 1)};
    spec.server = ew::core::IPv4Address{93, 184, static_cast<std::uint8_t>(i % 200 + 1),
                                        static_cast<std::uint8_t>(i % 250 + 1)};
    spec.client_port = static_cast<std::uint16_t>(40000 + i % 20000);
    spec.web = i % 2 == 0 ? ew::dpi::WebProtocol::kTls : ew::dpi::WebProtocol::kHttp;
    spec.server_name = "bench.example.com";
    spec.start = ew::core::Timestamp{(100 + i % 50) * 1'000'000LL + i * 1'700LL};
    spec.rtt_us = 3000 + (i % 7) * 2500;
    spec.response_bytes = 6'000 + (i % 11) * 2'000;
    for (auto& f : ew::synth::render_conversation(spec)) frames.push_back(std::move(f));
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const ew::net::Frame& a, const ew::net::Frame& b) {
                     return a.timestamp < b.timestamp;
                   });
  return frames;
}

struct Sample {
  std::size_t queue_capacity = 0;  ///< Ring size — the inverse offered-load proxy.
  std::uint64_t offered = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t quarantined = 0;
  double shed_rate = 0;
  double seconds = 0;
  std::string state;
  std::uint32_t sample_shift = 0;
  bool reconciled = false;
};

void append_json(std::string& out, const Sample& s) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"overload_cap_%llu\", \"queue_capacity\": %llu, "
                "\"offered\": %llu, \"ingested\": %llu, \"shed\": %llu, "
                "\"quarantined\": %llu, \"shed_rate\": %.4f, \"seconds\": %.4f, "
                "\"state\": \"%s\", \"sample_shift\": %u, \"reconciled\": %s}",
                static_cast<unsigned long long>(s.queue_capacity),
                static_cast<unsigned long long>(s.queue_capacity),
                static_cast<unsigned long long>(s.offered),
                static_cast<unsigned long long>(s.ingested),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.quarantined), s.shed_rate, s.seconds,
                s.state.c_str(), s.sample_shift, s.reconciled ? "true" : "false");
  if (!out.empty()) out += ",\n";
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const int conversations = argc > 1 ? std::atoi(argv[1]) : 400;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto out_path = argc > 3 ? std::string(argv[3]) : std::string("BENCH_pipeline.json");

  const auto frames = make_traffic_mix(conversations);
  const auto dir = std::filesystem::temp_directory_path() / "ew_bench_overload";
  std::printf("bench_overload: %zu frames, %d repeats\n", frames.size(), repeats);

  // Offered load rises as the ring shrinks: the widest ring is the calm
  // baseline; each halving-of-halvings step doubles-and-more the effective
  // pressure on the watermark machine.
  const std::size_t capacities[] = {16'384, 4'096, 1'024, 256, 64};
  std::string samples;
  bool all_reconciled = true;

  for (const std::size_t capacity : capacities) {
    Sample best;
    for (int rep = 0; rep < repeats; ++rep) {
      std::filesystem::remove_all(dir);
      ew::storage::DataLake lake{dir / "lake"};

      ew::runtime::SupervisorConfig cfg;
      cfg.probe.shards = 2;
      cfg.probe.queue_capacity = capacity;
      cfg.overload.observe_every = 8;
      cfg.overload.escalate_after = 4;
      cfg.overload.recover_after = 16;
      cfg.overload.ingest_retries = 16;

      ew::runtime::Supervisor sup{lake, cfg};
      if (!sup.start()) {
        std::printf("supervisor start failed\n");
        return 1;
      }
      const auto t0 = Clock::now();
      for (const auto& f : frames) sup.offer(f);
      if (!sup.finish()) {
        std::printf("supervisor finish failed\n");
        return 1;
      }
      const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

      const auto h = sup.health();
      Sample s;
      s.queue_capacity = capacity;
      s.offered = h.frames_offered;
      s.ingested = h.frames_ingested;
      s.shed = h.shed_total();
      s.quarantined = h.frames_quarantined;
      s.shed_rate = h.frames_offered == 0
                        ? 0.0
                        : static_cast<double>(s.shed) / static_cast<double>(h.frames_offered);
      s.seconds = secs;
      s.state = ew::runtime::to_string(h.state);
      s.sample_shift = h.sample_shift;
      s.reconciled = h.reconciles();
      if (rep == 0 || s.seconds < best.seconds) best = s;
      if (!s.reconciled) all_reconciled = false;
    }
    append_json(samples, best);
    std::printf("  ring %6llu: offered=%llu shed=%llu (%.1f%%) state=%s shift=%u %s\n",
                static_cast<unsigned long long>(best.queue_capacity),
                static_cast<unsigned long long>(best.offered),
                static_cast<unsigned long long>(best.shed), best.shed_rate * 100.0,
                best.state.c_str(), best.sample_shift,
                best.reconciled ? "reconciled" : "ACCOUNTING MISMATCH");
  }
  std::filesystem::remove_all(dir);

  std::string json = "{\n";
  json += "  \"bench\": \"overload\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"conversations\": " + std::to_string(conversations) + ",\n";
  json += "  \"frames\": " + std::to_string(frames.size()) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"samples\": [\n" + samples + "\n  ]\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("could not write %s\n", out_path.c_str());
    return 1;
  }
  return all_reconciled ? 0 : 2;
}
