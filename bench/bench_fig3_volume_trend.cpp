// Fig. 3 — average per-subscription daily traffic over the 54 months.
// Paper: ADSL download grows at a constant rate from ~300 MB (2013) to
// ~700 MB (late 2017); FTTH ~25% higher, topping 1 GB/day; ADSL upload
// flat (1 Mb/s bottleneck); FTTH upload grows modestly.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;

namespace {

const std::vector<ew::analytics::DayAggregate>& window() {
  // Every 3rd month keeps the bench under a minute while covering the
  // whole 2013-2017 span.
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    for (ew::core::MonthIndex m{2013, 3}; m <= ew::core::MonthIndex{2017, 9}; m = m + 3) {
      for (const auto d : bench_common::sample_days(m, 2)) {
        out.push_back(bench_common::generator().day_aggregate(d));
      }
    }
    return out;
  }();
  return days;
}

void print_reproduction() {
  bench_common::header("Figure 3", "average per-subscription daily traffic (2013-2017)");
  const auto rows = ew::analytics::volume_trend(window());
  std::printf(
      "  month     ADSL down  FTTH down  ADSL up  FTTH up   actADSL  actFTTH\n");
  for (const auto& row : rows) {
    std::printf("  %s    %8.0f   %8.0f   %6.1f   %6.1f   %6zu   %6zu\n",
                row.month.to_string().c_str(), row.down_mb[0], row.down_mb[1], row.up_mb[0],
                row.up_mb[1], row.subscribers[0], row.subscribers[1]);
  }
  // §2.1: "a steady reduction in the number of active ADSL users and an
  // increase in FTTH installations" (churn + technology upgrades).
  bench_common::compare("ADSL active-subscriber drift 2013->2017 (x)", "<1 (churn)",
                        static_cast<double>(rows.back().subscribers[0]) /
                            static_cast<double>(rows.front().subscribers[0]));
  bench_common::compare("FTTH active-subscriber drift 2013->2017 (x)", ">1 (rollout)",
                        static_cast<double>(rows.back().subscribers[1]) /
                            static_cast<double>(rows.front().subscribers[1]));
  const auto& first = rows.front();
  const auto& last = rows.back();
  bench_common::compare("ADSL down 2013-03 (MB/day)", "~300", first.down_mb[0]);
  bench_common::compare("ADSL down 2017 (MB/day)", "~700", last.down_mb[0]);
  bench_common::compare("FTTH down 2017 (MB/day)", "~1000", last.down_mb[1]);
  bench_common::compare("FTTH/ADSL download premium (x)", "~1.25",
                        last.down_mb[1] / last.down_mb[0]);
  bench_common::compare("ADSL upload drift 2013->2017 (x)", "~1 (flat)",
                        last.up_mb[0] / first.up_mb[0]);
  bench_common::compare("FTTH upload growth (x)", "modest >1",
                        last.up_mb[1] / first.up_mb[1]);
}

void BM_VolumeTrend(benchmark::State& state) {
  const auto& days = window();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::volume_trend(days));
  }
}
BENCHMARK(BM_VolumeTrend);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
