// Columnar scan-path harness (run by scripts/bench.sh): the tentpole claim
// of the v3 block layout is (a) the pipeline's full-day scan — delivering
// the stage-one aggregation working set — runs >= 3x faster than the
// row-oriented v2 stream (batch varint columns plus projection pushdown
// beat per-record field walks that must materialize every field), and
// (b) a selective scan — one service, a one-hour window — skips >= 90% of
// the blocks on zone maps alone, without decompressing a single pruned
// segment.
//
// The same time-sorted record stream is written once per format; three
// full-day scans (v2, v3 every-field, v3 projected to the day-aggregate
// fields) and the predicate scan are then timed against each lake. The v2
// scans are the honest baseline: decode everything, filter afterwards —
// exactly what the pushdown path must beat. Delivered-record counts and a
// byte checksum over projected counters are cross-checked between formats
// (a fast scan that returns a different answer is a bug, not a win), and
// the skip-ratio gate is a hard exit-code assertion so even the CI smoke
// run keeps it honest.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analytics/parallel.hpp"
#include "core/time.hpp"
#include "storage/columnar.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int day_count = argc > 1 ? std::atoi(argv[1]) : 8;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto out_path =
      argc > 3 ? std::string(argv[3]) : std::string("BENCH_scan_selectivity.json");

  // One big multi-block "day" file: several synthetic days' records merged
  // and time-sorted, so blocks are time-clustered and zone maps can prune.
  const auto scenario = ew::synth::build_paper_scenario(/*seed=*/7, /*scale=*/0.2);
  const ew::synth::WorkloadGenerator gen{scenario};
  const ew::core::CivilDate base{2015, 6, 1};
  std::vector<ew::flow::FlowRecord> records;
  for (int d = 0; d < day_count; ++d) {
    const auto z = ew::core::days_from_civil(base) + d;
    auto day_recs = gen.day_records(ew::core::civil_from_days(z));
    records.insert(records.end(), std::make_move_iterator(day_recs.begin()),
                   std::make_move_iterator(day_recs.end()));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const ew::flow::FlowRecord& a, const ew::flow::FlowRecord& b) {
                     return a.first_packet < b.first_packet;
                   });

  const auto dir = fs::temp_directory_path() / "ew_bench_scan_selectivity";
  fs::remove_all(dir);
  ew::storage::DataLake v2{dir / "v2"}, v3{dir / "v3"};
  v2.set_write_format(ew::storage::LakeFormat::kV2);
  if (!v2.append(base, records) || !v3.append(base, records)) {
    std::fprintf(stderr, "lake append failed\n");
    return 1;
  }
  const std::size_t blocks = v3.load_day_blocks(base).blocks().size();
  std::printf("scan selectivity bench: %zu records, %zu blocks, %d repeats\n", records.size(),
              blocks, repeats);

  // The selective question: one service's traffic in one hour of one day.
  // (YouTube is present across the whole paper-scenario service evolution.)
  ew::storage::ScanPredicate pred =
      ew::storage::ScanPredicate::for_service(ew::services::ServiceId::kYouTube);
  const auto mid = ew::core::civil_from_days(ew::core::days_from_civil(base) + day_count / 2);
  pred.time_min_us = ew::core::Timestamp::from_date_time(mid, 21).micros();
  pred.time_max_us = ew::core::Timestamp::from_date_time(mid, 22).micros() - 1;
  // The pipeline's full-day scan: unrestricted rows, stage-one columns only.
  const ew::storage::ScanPredicate proj =
      ew::storage::ScanPredicate::project(ew::analytics::kDayAggregateScanFields);

  std::uint64_t full_v2 = 0, full_v3 = 0, full_v3p = 0, sel_v2 = 0, sel_v3 = 0;
  std::uint64_t chk_v2 = 0, chk_v3 = 0, chk_v3p = 0;
  ew::storage::ScanResult sel_scan;
  std::uint64_t sum = 0;
  const auto count = [&](const ew::flow::FlowRecord& r) {
    sum += r.up.bytes + r.down.bytes;
  };

  const double v2_full_s = best_of(repeats, [&] {
    sum = 0;
    const auto s = v2.scan_day(base, count);
    full_v2 = s.records_delivered;
    chk_v2 = sum;
  });
  const double v3_full_s = best_of(repeats, [&] {
    sum = 0;
    const auto s = v3.scan_day(base, count);
    full_v3 = s.records_delivered;
    chk_v3 = sum;
  });
  const double v3_proj_s = best_of(repeats, [&] {
    sum = 0;
    const auto s = v3.scan_day(base, proj, count);
    full_v3p = s.records_delivered;
    chk_v3p = sum;
  });
  const double v2_sel_s = best_of(repeats, [&] {
    const auto s = v2.scan_day(base, pred, count);
    sel_v2 = s.records_delivered;
  });
  const double v3_sel_s = best_of(repeats, [&] {
    sel_scan = v3.scan_day(base, pred, count);
    sel_v3 = sel_scan.records_delivered;
  });

  const double full_speedup = v3_full_s > 0 ? v2_full_s / v3_full_s : 0;
  const double proj_speedup = v3_proj_s > 0 ? v2_full_s / v3_proj_s : 0;
  const double sel_speedup = v3_sel_s > 0 ? v2_sel_s / v3_sel_s : 0;
  const double skip_ratio = blocks > 0 ? double(sel_scan.blocks_pruned) / double(blocks) : 0;
  std::printf("  v2 full scan:      %8.3f s  (%.2fM rec/s)\n", v2_full_s,
              full_v2 / v2_full_s / 1e6);
  std::printf("  v3 full scan:      %8.3f s  (%.2fM rec/s, %.2fx vs v2)\n", v3_full_s,
              full_v3 / v3_full_s / 1e6, full_speedup);
  std::printf("  v3 projected scan: %8.3f s  (%.2fM rec/s, %.2fx vs v2, day-aggregate "
              "columns)\n",
              v3_proj_s, full_v3p / v3_proj_s / 1e6, proj_speedup);
  std::printf("  v2 selective:      %8.3f s  (post-decode filter, %llu rows)\n", v2_sel_s,
              static_cast<unsigned long long>(sel_v2));
  std::printf("  v3 selective:      %8.3f s  (pushdown, %.2fx vs v2, %u/%zu blocks pruned "
              "= %.1f%% skipped)\n",
              v3_sel_s, sel_speedup, sel_scan.blocks_pruned, blocks, 100 * skip_ratio);

  // Correctness gates — a fast scan with a different answer is a bug. The
  // projected scan must deliver every record with the same byte counters
  // (its mask covers the checksum's fields), not merely the same count.
  if (full_v2 != full_v3 || full_v2 != full_v3p || sel_v2 != sel_v3 || sel_v2 == 0 ||
      chk_v2 != chk_v3 || chk_v2 != chk_v3p) {
    std::fprintf(stderr, "FAIL: delivered-record mismatch (full %llu/%llu/%llu, selective "
                 "%llu/%llu, checksums %llu/%llu/%llu)\n",
                 static_cast<unsigned long long>(full_v2),
                 static_cast<unsigned long long>(full_v3),
                 static_cast<unsigned long long>(full_v3p),
                 static_cast<unsigned long long>(sel_v2),
                 static_cast<unsigned long long>(sel_v3),
                 static_cast<unsigned long long>(chk_v2),
                 static_cast<unsigned long long>(chk_v3),
                 static_cast<unsigned long long>(chk_v3p));
    return 1;
  }
  // The zone-map gate: the one-hour predicate must prune >= 90% of blocks.
  if (skip_ratio < 0.9) {
    std::fprintf(stderr, "FAIL: selective scan skipped only %.1f%% of blocks (need >= 90%%)\n",
                 100 * skip_ratio);
    return 1;
  }

  char buf[896];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"scan_selectivity\",\n"
                "  \"records\": %zu,\n"
                "  \"blocks\": %zu,\n"
                "  \"repeats\": %d,\n"
                "  \"v2_full_scan_s\": %.6f,\n"
                "  \"v3_full_scan_s\": %.6f,\n"
                "  \"v3_full_speedup_vs_v2\": %.2f,\n"
                "  \"v3_projected_scan_s\": %.6f,\n"
                "  \"v3_projected_speedup_vs_v2\": %.2f,\n"
                "  \"v2_selective_s\": %.6f,\n"
                "  \"v3_selective_s\": %.6f,\n"
                "  \"v3_selective_speedup_vs_v2\": %.2f,\n"
                "  \"selective_rows\": %llu,\n"
                "  \"blocks_pruned\": %u,\n"
                "  \"skip_ratio\": %.4f\n"
                "}\n",
                records.size(), blocks, repeats, v2_full_s, v3_full_s, full_speedup, v3_proj_s,
                proj_speedup, v2_sel_s, v3_sel_s, sel_speedup,
                static_cast<unsigned long long>(sel_v2), sel_scan.blocks_pruned, skip_ratio);
  bool wrote = false;
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(buf, f);
    std::fclose(f);
    wrote = true;
    std::printf("wrote %s\n", out_path.c_str());
  }
  fs::remove_all(dir);
  return wrote ? 0 : 1;
}
