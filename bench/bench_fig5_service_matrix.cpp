// Fig. 5 — popularity (% of active ADSL subscribers contacting the service
// daily) and share of downloaded bytes, for the 18 services, over time.
// Paper highlights: Google ~60% steady; Bing grows 15%→45% (Windows
// telemetry); DuckDuckGo <0.3%; SnapChat momentum only during 2015-16;
// Facebook/Instagram/WhatsApp/Netflix increase traffic share; P2P fades.
#include "analytics/figures.hpp"
#include "bench_common.hpp"
#include "services/catalog.hpp"

namespace ew = edgewatch;
using ew::services::ServiceId;

namespace {

const std::vector<ew::analytics::DayAggregate>& window() {
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    for (ew::core::MonthIndex m{2013, 6}; m <= ew::core::MonthIndex{2017, 6}; m = m + 12) {
      for (const auto d : bench_common::sample_days(m, 2)) {
        out.push_back(bench_common::generator().day_aggregate(d));
      }
    }
    return out;
  }();
  return days;
}

void print_reproduction() {
  bench_common::header("Figure 5",
                       "service popularity (ADSL, % active users) and byte share (%)");
  const auto matrix =
      ew::analytics::service_matrix(window(), ew::flow::AccessTech::kAdsl);

  std::printf("  %-14s", "service");
  for (const auto m : matrix.months) std::printf("  %8s", m.to_string().c_str());
  std::printf("   (popularity %% / byte share %%)\n");
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    const auto id = static_cast<ServiceId>(s);
    if (id == ServiceId::kOther) continue;
    std::printf("  %-14s", std::string(ew::services::to_string(id)).c_str());
    for (std::size_t mi = 0; mi < matrix.months.size(); ++mi) {
      std::printf("  %4.1f/%3.1f", matrix.cells[s][mi].popularity_pct,
                  matrix.cells[s][mi].byte_share_pct);
    }
    std::printf("\n");
  }

  const auto last = matrix.months.size() - 1;
  auto cell = [&](ServiceId id, std::size_t mi) {
    return matrix.cells[static_cast<std::size_t>(id)][mi];
  };
  bench_common::compare("Google popularity (steady, %)", "~60", cell(ServiceId::kGoogle, last).popularity_pct);
  bench_common::compare("Bing popularity 2013 (%)", "<15", cell(ServiceId::kBing, 0).popularity_pct);
  bench_common::compare("Bing popularity 2017 (%)", "~45", cell(ServiceId::kBing, last).popularity_pct);
  bench_common::compare("DuckDuckGo popularity (%)", "<0.3", cell(ServiceId::kDuckDuckGo, last).popularity_pct);
  bench_common::compare("YouTube byte share 2017 (%)", "~10 (palette cap)", cell(ServiceId::kYouTube, last).byte_share_pct);
  bench_common::compare("P2P byte share 2013 vs 2017 (pp drop)", "large",
                        cell(ServiceId::kPeerToPeer, 0).byte_share_pct -
                            cell(ServiceId::kPeerToPeer, last).byte_share_pct);
}

void BM_ServiceMatrix(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ew::analytics::service_matrix(window(), ew::flow::AccessTech::kAdsl));
  }
}
BENCHMARK(BM_ServiceMatrix);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
