// §2.2 — the storage stage: 247 billion records / 31.9 TB compressed over
// five years means the record codec and the day-partitioned store must be
// fast and compact. Measures encode/decode, compression, and full
// lake write+scan round trips; prints the achieved compression ratio.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "analytics/parallel.hpp"
#include "core/thread_pool.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;

namespace {

const std::vector<ew::flow::FlowRecord>& sample_records() {
  static const auto records = [] {
    const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(42)};
    return gen.day_records({2016, 5, 10});
  }();
  return records;
}

void BM_EncodeRecords(benchmark::State& state) {
  const auto& records = sample_records();
  for (auto _ : state) {
    ew::core::ByteWriter w{records.size() * 64};
    for (const auto& r : records) ew::storage::encode_record(r, w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_EncodeRecords);

void BM_DecodeRecords(benchmark::State& state) {
  const auto& records = sample_records();
  ew::core::ByteWriter w{records.size() * 64};
  for (const auto& r : records) ew::storage::encode_record(r, w);
  for (auto _ : state) {
    ew::core::ByteReader reader{w.view()};
    std::size_t n = 0;
    while (auto rec = ew::storage::decode_record(reader)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_DecodeRecords);

void BM_CompressBlock(benchmark::State& state) {
  const auto& records = sample_records();
  ew::core::ByteWriter w;
  for (std::size_t i = 0; i < std::min<std::size_t>(records.size(), 4096); ++i) {
    ew::storage::encode_record(records[i], w);
  }
  const std::vector<std::byte> block{w.view().begin(), w.view().end()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::storage::compress_block(block));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(block.size()));
}
BENCHMARK(BM_CompressBlock);

void BM_LakeWriteScan(benchmark::State& state) {
  const auto& records = sample_records();
  const auto dir = std::filesystem::temp_directory_path() / "ew_bench_lake";
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    ew::storage::DataLake lake{dir};
    lake.append({2016, 5, 10}, records);
    std::size_t n = 0;
    lake.scan_day({2016, 5, 10}, [&n](const ew::flow::FlowRecord&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_LakeWriteScan);

// The acceptance curve for the columnar scan path: one stored day, scanned
// end to end (read + CRC + decode + deliver) with a byte-summing consumer.
// Arg(0) selects the path: 0 = the v2 row-format baseline, 1 = v3 decoding
// every field, 2 = v3 projected to the stage-one day-aggregate working set
// (analytics::kDayAggregateScanFields — what the pipeline's full-day scan
// actually runs). The v2 numbers are the comparison baseline for the
// v3 speedups recorded in BENCH_pipeline.json (bench_scan_selectivity
// measures the same three curves machine-readably).
void BM_LakeFullDayScan(benchmark::State& state) {
  const auto& records = sample_records();
  const int mode = static_cast<int>(state.range(0));
  const auto dir = std::filesystem::temp_directory_path() / "ew_bench_lake_scan";
  std::filesystem::remove_all(dir);
  ew::storage::DataLake lake{dir};
  if (mode == 0) lake.set_write_format(ew::storage::LakeFormat::kV2);
  lake.append({2016, 5, 10}, records);
  const ew::storage::ScanPredicate proj =
      ew::storage::ScanPredicate::project(ew::analytics::kDayAggregateScanFields);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    const auto count = [&sum](const ew::flow::FlowRecord& r) {
      sum += r.up.bytes + r.down.bytes;
    };
    const auto res = mode == 2 ? lake.scan_day({2016, 5, 10}, proj, count)
                               : lake.scan_day({2016, 5, 10}, count);
    if (res.records_delivered != records.size()) state.SkipWithError("short scan");
    benchmark::DoNotOptimize(sum);
  }
  std::filesystem::remove_all(dir);
  state.SetLabel(mode == 0   ? "v2-baseline"
                 : mode == 1 ? "v3-all-fields"
                             : "v3-projected");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_LakeFullDayScan)->Arg(0)->Arg(1)->Arg(2);

// Stage-one aggregation of one stored day with the blocks fanned out over
// a pool of Arg(0) threads (1 = the serial path). Deterministic: every
// thread count produces the identical DayAggregate (tests/test_parallel).
void BM_ParallelDayAggregate(benchmark::State& state) {
  const auto& records = sample_records();
  const auto dir = std::filesystem::temp_directory_path() / "ew_bench_lake_par";
  std::filesystem::remove_all(dir);
  ew::storage::DataLake lake{dir};
  lake.append({2016, 5, 10}, records);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    if (threads == 1) {
      benchmark::DoNotOptimize(ew::analytics::aggregate_day(lake, {2016, 5, 10}));
    } else {
      ew::core::ThreadPool pool{threads};
      benchmark::DoNotOptimize(
          ew::analytics::aggregate_day_parallel(lake, {2016, 5, 10}, pool));
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ParallelDayAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void print_compression_report() {
  const auto& records = sample_records();
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  const std::vector<std::byte> raw{w.view().begin(), w.view().end()};
  const auto compressed = ew::storage::compress_block(raw);
  std::printf("\n================================================================\n");
  std::printf("§2.2 storage pipeline (one synthetic day: %zu records)\n", records.size());
  std::printf("================================================================\n");
  std::printf("  in-memory struct size:   %zu B/record\n", sizeof(ew::flow::FlowRecord));
  std::printf("  varint-encoded:          %.1f B/record\n",
              static_cast<double>(raw.size()) / static_cast<double>(records.size()));
  std::printf("  after block compression: %.1f B/record (ratio %.2fx)\n",
              static_cast<double>(compressed.size()) / static_cast<double>(records.size()),
              static_cast<double>(raw.size()) / static_cast<double>(compressed.size()));
  std::printf("  paper scale check: 247e9 records at this density = %.1f TB compressed\n",
              247e9 * static_cast<double>(compressed.size()) /
                  static_cast<double>(records.size()) / 1e12);
  std::printf("  (paper reports 31.9 TB for its richer Tstat records)\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_compression_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
