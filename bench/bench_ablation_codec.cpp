// Ablation — flow-record encoding choices (DESIGN.md §5). Compares raw
// struct dumps, varint encoding, and varint+block-compression on size and
// speed; the §2.2 storage claim (years of logs kept online) rests on the
// compact variant.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "storage/codec.hpp"
#include "storage/compress.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;

namespace {

const std::vector<ew::flow::FlowRecord>& records() {
  static const auto recs = [] {
    const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(42)};
    return gen.day_records({2015, 5, 10});
  }();
  return recs;
}

/// "Raw" baseline: fixed-width dump of the POD fields + length-prefixed
/// name (what a naive exporter would write).
std::vector<std::byte> encode_raw(const std::vector<ew::flow::FlowRecord>& recs) {
  ew::core::ByteWriter w{recs.size() * 128};
  for (const auto& r : recs) {
    w.u32(r.client_ip.value());
    w.u32(r.server_ip.value());
    w.u16(r.client_port);
    w.u16(r.server_port);
    w.u8(static_cast<std::uint8_t>(r.proto));
    w.u8(static_cast<std::uint8_t>(r.access));
    w.u64(static_cast<std::uint64_t>(r.first_packet.micros()));
    w.u64(static_cast<std::uint64_t>(r.last_packet.micros()));
    w.u64(r.up.packets);
    w.u64(r.up.bytes);
    w.u64(r.up.bytes_with_hdr);
    w.u64(r.down.packets);
    w.u64(r.down.bytes);
    w.u64(r.down.bytes_with_hdr);
    w.u8(r.handshake_completed);
    w.u8(static_cast<std::uint8_t>(r.close_reason));
    w.u32(r.rtt.samples);
    w.u64(static_cast<std::uint64_t>(r.rtt.min_us));
    w.u64(static_cast<std::uint64_t>(r.rtt.max_us));
    w.u64(static_cast<std::uint64_t>(r.rtt.avg_us));
    w.u8(static_cast<std::uint8_t>(r.l7));
    w.u8(static_cast<std::uint8_t>(r.web));
    w.u8(static_cast<std::uint8_t>(r.name_source));
    w.u16(static_cast<std::uint16_t>(r.server_name.size()));
    w.string(r.server_name);
  }
  auto view = w.view();
  return {view.begin(), view.end()};
}

std::vector<std::byte> encode_varint(const std::vector<ew::flow::FlowRecord>& recs) {
  ew::core::ByteWriter w{recs.size() * 64};
  for (const auto& r : recs) ew::storage::encode_record(r, w);
  auto view = w.view();
  return {view.begin(), view.end()};
}

void print_reproduction() {
  std::printf("\n================================================================\n");
  std::printf("Ablation: flow-record encodings (%zu records, one synthetic day)\n",
              records().size());
  std::printf("================================================================\n");
  const auto raw = encode_raw(records());
  const auto varint = encode_varint(records());
  const auto raw_z = ew::storage::compress_block(raw);
  const auto varint_z = ew::storage::compress_block(varint);
  const auto n = static_cast<double>(records().size());
  std::printf("  %-32s %10.1f B/record\n", "raw fixed-width", raw.size() / n);
  std::printf("  %-32s %10.1f B/record\n", "raw + block compression", raw_z.size() / n);
  std::printf("  %-32s %10.1f B/record\n", "varint+delta (ours)", varint.size() / n);
  std::printf("  %-32s %10.1f B/record\n", "varint+delta + compression (ours)",
              varint_z.size() / n);
  std::printf("  end-to-end size advantage: %.2fx vs raw\n",
              static_cast<double>(raw.size()) / static_cast<double>(varint_z.size()));
}

void BM_EncodeRaw(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(encode_raw(records()));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records().size()));
}
BENCHMARK(BM_EncodeRaw);

void BM_EncodeVarint(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(encode_varint(records()));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records().size()));
}
BENCHMARK(BM_EncodeVarint);

void BM_EncodeVarintCompressed(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::storage::compress_block(encode_varint(records())));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records().size()));
}
BENCHMARK(BM_EncodeVarintCompressed);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
