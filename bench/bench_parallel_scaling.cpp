// Parallel-engine scaling harness (run by scripts/bench.sh). Unlike the
// gbench binaries this is a plain main() that measures the two parallel
// paths end to end and writes machine-readable results to
// BENCH_pipeline.json:
//
//   - probe ingest: serial Probe vs ShardedProbe at 1/2/4/8 shards over a
//     replayed traffic mix (records/sec + speedup vs serial);
//   - stage-one analytics: serial aggregate_day vs block-parallel
//     aggregate_day_parallel at 1/2/4/8 threads over a stored day;
//   - a determinism check: the merged output of every configuration is
//     byte-compared (probe) / deep-compared (analytics) to the serial run.
//
// hardware_concurrency is recorded next to the numbers: speedups flatten
// at the physical core count, so a 1-core CI box honestly reports ~1.0x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analytics/parallel.hpp"
#include "core/bytes.hpp"
#include "core/thread_pool.hpp"
#include "probe/probe.hpp"
#include "probe/sharded_probe.hpp"
#include "storage/codec.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<ew::net::Frame> make_traffic_mix(int conversations) {
  std::vector<ew::net::Frame> frames;
  for (int i = 0; i < conversations; ++i) {
    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, static_cast<std::uint8_t>((i / 250) % 64),
                                        static_cast<std::uint8_t>(i / 250 % 250),
                                        static_cast<std::uint8_t>(i % 250 + 1)};
    spec.client_port = static_cast<std::uint16_t>(40000 + i % 20000);
    spec.start = ew::core::Timestamp::from_seconds(100 + i % 50);
    spec.rtt_us = 3000 + (i % 7) * 2500;
    spec.response_bytes = 8'000 + (i % 11) * 4'000;
    switch (i % 3) {
      case 0:
        spec.server = ew::core::IPv4Address{157, 240, 1, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kHttp2;
        spec.server_name = "www.facebook.com";
        spec.alpn = "h2";
        break;
      case 1:
        spec.server = ew::core::IPv4Address{93, 184, 216, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kHttp;
        spec.server_name = "www.repubblica.it";
        break;
      default:
        spec.server = ew::core::IPv4Address{173, 194, 4, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kQuic;
        break;
    }
    auto conv = ew::synth::render_conversation(spec);
    frames.insert(frames.end(), std::make_move_iterator(conv.begin()),
                  std::make_move_iterator(conv.end()));
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  return frames;
}

std::vector<std::byte> encode_stream(const std::vector<ew::flow::FlowRecord>& records) {
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  return {w.view().begin(), w.view().end()};
}

struct Sample {
  std::string name;
  std::size_t threads = 0;
  double seconds = 0;
  double items_per_sec = 0;
  double speedup = 1.0;
  bool deterministic = true;
};

void append_json(std::string& out, const Sample& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"%s\", \"threads\": %zu, \"seconds\": %.4f, "
                "\"items_per_sec\": %.0f, \"speedup\": %.2f, \"deterministic\": %s}",
                s.name.c_str(), s.threads, s.seconds, s.items_per_sec, s.speedup,
                s.deterministic ? "true" : "false");
  if (!out.empty()) out += ",\n";
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const int conversations = argc > 1 ? std::atoi(argv[1]) : 600;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto out_path = argc > 3 ? std::string(argv[3]) : std::string("BENCH_pipeline.json");
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("parallel scaling bench: %d conversations, %d repeats, %u hardware threads\n",
              conversations, repeats, hw);

  std::string samples;

  // ---------------------------------------------------------- probe ingest
  const auto frames = make_traffic_mix(conversations);
  std::printf("traffic mix: %zu frames\n", frames.size());

  double serial_probe_s = 0;
  std::vector<std::byte> probe_golden;
  {
    double best = 1e100;
    std::vector<ew::flow::FlowRecord> records;
    for (int r = 0; r < repeats; ++r) {
      records.clear();
      const auto t0 = Clock::now();
      ew::probe::Probe probe{{}, [&records](ew::flow::FlowRecord&& rec) {
                               records.push_back(std::move(rec));
                             }};
      probe.process(std::span<const ew::net::Frame>(frames));
      probe.finish();
      best = std::min(best, seconds_since(t0));
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const auto& a, const auto& b) { return a.ingest_seq < b.ingest_seq; });
    probe_golden = encode_stream(records);
    serial_probe_s = best;
    Sample s{"probe_serial", 1, best, static_cast<double>(frames.size()) / best, 1.0, true};
    append_json(samples, s);
    std::printf("  probe serial:      %8.0f frames/s\n", s.items_per_sec);
  }
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    double best = 1e100;
    std::vector<std::byte> merged_bytes;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = Clock::now();
      ew::probe::ShardedProbeConfig cfg;
      cfg.shards = shards;
      ew::probe::ShardedProbe probe{cfg};
      for (const auto& f : frames) probe.ingest(f);
      const auto merged = probe.finish();
      best = std::min(best, seconds_since(t0));
      merged_bytes = encode_stream(merged);
    }
    Sample s{"probe_sharded", shards, best, static_cast<double>(frames.size()) / best,
             serial_probe_s / best, merged_bytes == probe_golden};
    append_json(samples, s);
    std::printf("  probe %zu shard(s):  %8.0f frames/s  speedup %.2fx  %s\n", shards,
                s.items_per_sec, s.speedup, s.deterministic ? "bit-identical" : "MISMATCH");
  }

  // ------------------------------------------------------------- analytics
  const auto dir = std::filesystem::temp_directory_path() / "ew_bench_scaling_lake";
  std::filesystem::remove_all(dir);
  ew::storage::DataLake lake{dir};
  const ew::core::CivilDate day{2016, 5, 10};
  {
    const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(42)};
    lake.append(day, gen.day_records(day));
  }
  double serial_agg_s = 0;
  ew::analytics::DayScanAggregate golden;
  {
    double best = 1e100;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = Clock::now();
      golden = ew::analytics::aggregate_day(lake, day);
      best = std::min(best, seconds_since(t0));
    }
    serial_agg_s = best;
    Sample s{"aggregate_serial", 1, best,
             static_cast<double>(golden.scan.records_delivered) / best, 1.0, true};
    append_json(samples, s);
    std::printf("  aggregate serial:  %8.0f records/s (%llu records)\n", s.items_per_sec,
                static_cast<unsigned long long>(golden.scan.records_delivered));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    double best = 1e100;
    ew::analytics::DayScanAggregate result;
    for (int r = 0; r < repeats; ++r) {
      ew::core::ThreadPool pool{threads};
      const auto t0 = Clock::now();
      result = ew::analytics::aggregate_day_parallel(lake, day, pool);
      best = std::min(best, seconds_since(t0));
    }
    bool same = result.scan.records_delivered == golden.scan.records_delivered &&
                result.aggregate.subscribers.size() == golden.aggregate.subscribers.size() &&
                result.aggregate.web_bytes == golden.aggregate.web_bytes &&
                result.aggregate.rtt_min_ms == golden.aggregate.rtt_min_ms &&
                result.aggregate.domain_bytes == golden.aggregate.domain_bytes;
    Sample s{"aggregate_parallel", threads, best,
             static_cast<double>(golden.scan.records_delivered) / best, serial_agg_s / best,
             same};
    append_json(samples, s);
    std::printf("  aggregate %zu thr:   %8.0f records/s  speedup %.2fx  %s\n", threads,
                s.items_per_sec, s.speedup, same ? "identical" : "MISMATCH");
  }
  std::filesystem::remove_all(dir);

  // ----------------------------------------------------------------- emit
  std::string json = "{\n";
  json += "  \"bench\": \"parallel_scaling\",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"conversations\": " + std::to_string(conversations) + ",\n";
  json += "  \"frames\": " + std::to_string(frames.size()) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"samples\": [\n" + samples + "\n  ]\n}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("could not write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
