// Shared helpers for the figure-reproduction benches. Each bench binary
// first prints its figure's reproduction table (paper-reported value vs
// measured value on the synthetic scenario), then runs google-benchmark
// timings of the underlying computation.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/time.hpp"
#include "synth/generator.hpp"

namespace bench_common {

namespace ew = edgewatch;

/// One process-wide generator so setup cost is paid once per binary.
inline const ew::synth::WorkloadGenerator& generator() {
  static const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(/*seed=*/42)};
  return gen;
}

/// Representative days of a month (spread across it, away from holidays).
inline std::vector<ew::core::CivilDate> sample_days(ew::core::MonthIndex month,
                                                    int days_per_month = 2) {
  static constexpr int kDays[] = {10, 20, 5, 15, 25};
  std::vector<ew::core::CivilDate> out;
  const int in_month = ew::core::days_in_month(month.year(), month.month());
  for (int i = 0; i < days_per_month && i < 5; ++i) {
    const int d = kDays[i] <= in_month ? kDays[i] : in_month;
    out.push_back({month.year(), static_cast<std::uint8_t>(month.month()),
                   static_cast<std::uint8_t>(d)});
  }
  return out;
}

/// Aggregates for N sample days of every month in [from, to].
inline std::vector<ew::analytics::DayAggregate> monthly_aggregates(
    ew::core::MonthIndex from, ew::core::MonthIndex to, int days_per_month = 2) {
  std::vector<ew::analytics::DayAggregate> out;
  for (auto m = from; m <= to; m = m + 1) {
    for (const auto day : sample_days(m, days_per_month)) {
      out.push_back(generator().day_aggregate(day));
    }
  }
  return out;
}

/// Aggregates for N sample days of one month.
inline std::vector<ew::analytics::DayAggregate> month_aggregates(ew::core::MonthIndex month,
                                                                 int days_per_month = 4) {
  std::vector<ew::analytics::DayAggregate> out;
  for (const auto day : sample_days(month, days_per_month)) {
    out.push_back(generator().day_aggregate(day));
  }
  return out;
}

inline void header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

/// "paper says X, we measured Y" row.
inline void compare(const char* metric, const char* paper, double measured,
                    const char* unit = "") {
  std::printf("  %-52s paper: %-14s measured: %.2f%s\n", metric, paper, measured, unit);
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace bench_common
