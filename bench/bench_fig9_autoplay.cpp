// Fig. 9 — Facebook average daily per-user traffic through 2014: ~35 MB
// before video auto-play (March), ~70 MB within a month, a May pause, then
// ~90 MB by July — 2.5x the March rate.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using ew::services::ServiceId;

namespace {

const std::vector<ew::analytics::DayAggregate>& year2014() {
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    for (ew::core::MonthIndex m{2014, 1}; m <= ew::core::MonthIndex{2014, 12}; m = m + 1) {
      for (const auto d : bench_common::sample_days(m, 2)) {
        out.push_back(bench_common::generator().day_aggregate(d));
      }
    }
    return out;
  }();
  return days;
}

void print_reproduction() {
  bench_common::header("Figure 9", "Facebook daily per-user traffic around video auto-play");
  const auto rows = ew::analytics::daily_service_volume(year2014(), ServiceId::kFacebook);
  std::printf("  date         MB/user   users\n");
  for (const auto& row : rows) {
    std::printf("  %s   %7.1f   %5zu\n", row.date.to_string().c_str(), row.mb_per_user,
                row.users);
  }
  auto month_avg = [&rows](unsigned month) {
    double sum = 0;
    int n = 0;
    for (const auto& row : rows) {
      if (row.date.month == month) {
        sum += row.mb_per_user;
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  bench_common::compare("March 2014 (MB/user, pre auto-play)", "~35", month_avg(3));
  bench_common::compare("April 2014 (MB/user, one month later)", "~70", month_avg(4));
  bench_common::compare("May 2014 (MB/user, rollout pause)", "dip", month_avg(5));
  bench_common::compare("July 2014 (MB/user)", "~90", month_avg(7));
  bench_common::compare("July / March ratio", "~2.5", month_avg(7) / month_avg(3));
}

void BM_DailyServiceVolume(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ew::analytics::daily_service_volume(year2014(), ServiceId::kFacebook));
  }
}
BENCHMARK(BM_DailyServiceVolume);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
