// Per-packet hot-path microbench (run by scripts/bench.sh). A plain main()
// that isolates the stages the hot-path overhaul touched and writes a
// machine-readable fragment for BENCH_pipeline.json:
//
//   - flow-table churn: the packet→flow resolution loop (orientation-aware
//     find + insert + expiry erase) on the open-addressing FlatHashMap vs
//     the same loop on std::unordered_map with the old two-probe lookup;
//   - domain classification: the compiled rule matcher (interned exact map,
//     reversed-label trie, regex literal prefilter) vs an in-bench legacy
//     reference (allocating normalize, per-boundary suffix probes, no
//     regex prefilter) over an identical rule set and domain corpus;
//   - frame decode throughput (headers parsed in place);
//   - the end-to-end serial probe, the number the 2x acceptance gate reads.
//
// Usage: bench_probe_hotpath [conversations] [repeats] [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "core/types.hpp"
#include "flow/table.hpp"
#include "net/packet.hpp"
#include "probe/probe.hpp"
#include "services/regex.hpp"
#include "services/rules.hpp"
#include "synth/generator.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<ew::net::Frame> make_traffic_mix(int conversations) {
  std::vector<ew::net::Frame> frames;
  for (int i = 0; i < conversations; ++i) {
    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, static_cast<std::uint8_t>((i / 250) % 64),
                                        static_cast<std::uint8_t>(i / 250 % 250),
                                        static_cast<std::uint8_t>(i % 250 + 1)};
    spec.client_port = static_cast<std::uint16_t>(40000 + i % 20000);
    spec.start = ew::core::Timestamp::from_seconds(100 + i % 50);
    spec.rtt_us = 3000 + (i % 7) * 2500;
    spec.response_bytes = 8'000 + (i % 11) * 4'000;
    switch (i % 3) {
      case 0:
        spec.server = ew::core::IPv4Address{157, 240, 1, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kHttp2;
        spec.server_name = "www.facebook.com";
        spec.alpn = "h2";
        break;
      case 1:
        spec.server = ew::core::IPv4Address{93, 184, 216, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kHttp;
        spec.server_name = "www.repubblica.it";
        break;
      default:
        spec.server = ew::core::IPv4Address{173, 194, 4, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kQuic;
        break;
    }
    auto conv = ew::synth::render_conversation(spec);
    frames.insert(frames.end(), std::make_move_iterator(conv.begin()),
                  std::make_move_iterator(conv.end()));
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  return frames;
}

/// Best-of-`repeats` wall time for `fn` (one untimed warmup run).
template <typename Fn>
double best_seconds(int repeats, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct Sample {
  std::string name;
  double seconds = 0;
  double items_per_sec = 0;
  double speedup = 1.0;  ///< vs this sample's in-bench reference (1.0 = none).
};

void append_json(std::string& out, const Sample& s) {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"%s\", \"seconds\": %.4f, \"items_per_sec\": %.0f, "
                "\"speedup\": %.2f}",
                s.name.c_str(), s.seconds, s.items_per_sec, s.speedup);
  if (!out.empty()) out += ",\n";
  out += buf;
}

// ---------------------------------------------------------------- rule sets

/// Pre-overhaul rule matcher, reimplemented here as the comparison
/// baseline: allocating lowercase normalize, std::unordered_map exact
/// probe, one full-string map probe per suffix boundary, regexes tried
/// without a literal prefilter.
class LegacyRuleEngine {
 public:
  void add_exact(std::string_view domain, std::string_view service) {
    exact_[normalize(domain)] = std::string(service);
  }
  void add_suffix(std::string_view suffix, std::string_view service) {
    suffix_[normalize(suffix)] = std::string(service);
  }
  bool add_regex(std::string_view pattern, std::string_view service) {
    auto re = ew::services::Regex::compile(pattern);
    if (!re) return false;
    regex_.push_back({std::move(*re), std::string(service)});
    return true;
  }

  [[nodiscard]] std::optional<std::string_view> classify(std::string_view domain) const {
    const std::string name = normalize(domain);
    if (const auto it = exact_.find(name); it != exact_.end()) return it->second;
    // Longest matching suffix: probe every label boundary, left to right.
    for (std::size_t pos = 0; pos < name.size();) {
      if (const auto it = suffix_.find(name.substr(pos)); it != suffix_.end()) {
        return it->second;
      }
      const auto dot = name.find('.', pos);
      if (dot == std::string::npos) break;
      pos = dot + 1;
    }
    for (const auto& rule : regex_) {
      if (rule.re.search(name)) return rule.service;
    }
    return std::nullopt;
  }

 private:
  static std::string normalize(std::string_view domain) {
    std::string out(domain);
    for (char& c : out) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (!out.empty() && out.back() == '.') out.pop_back();
    return out;
  }

  struct RegexRule {
    ew::services::Regex re;
    std::string service;
  };
  std::unordered_map<std::string, std::string> exact_;
  std::unordered_map<std::string, std::string> suffix_;
  std::vector<RegexRule> regex_;
};

/// Feed the same representative rule base (the shape of the paper's
/// Table 1) to any engine with add_exact/add_suffix/add_regex.
template <typename Engine>
void load_rules(Engine& e) {
  e.add_exact("facebook.com", "Facebook");
  e.add_exact("netflix.com", "Netflix");
  e.add_exact("google.com", "Google");
  e.add_suffix("fbcdn.net", "Facebook");
  e.add_suffix("facebook.com", "Facebook");
  e.add_suffix("nflxvideo.net", "Netflix");
  e.add_suffix("nflximg.net", "Netflix");
  e.add_suffix("googlevideo.com", "YouTube");
  e.add_suffix("ytimg.com", "YouTube");
  e.add_suffix("youtube.com", "YouTube");
  e.add_suffix("twimg.com", "Twitter");
  e.add_suffix("twitter.com", "Twitter");
  e.add_suffix("cdninstagram.com", "Instagram");
  e.add_suffix("whatsapp.net", "WhatsApp");
  e.add_suffix("spotify.com", "Spotify");
  e.add_regex("^fbstatic-[a-z]+\\.akamaihd\\.net$", "Facebook");
  e.add_regex("^instagram[a-z-]*\\.akamaihd\\.net$", "Instagram");
}

/// Deterministic domain corpus: hits on every rule kind, deep subdomains,
/// mixed case, trailing dots, and plenty of misses (most real hostnames
/// match no rule — the miss path must be fast too).
std::vector<std::string> make_domains(std::size_t n) {
  static constexpr const char* kPatterns[] = {
      "facebook.com",
      "scontent-mxp1-1.xx.fbcdn.net",
      "Static.XX.FBCDN.NET",
      "occ-0-2774-2773.1.nflxvideo.net",
      "r3---sn-4g5e6nsz.googlevideo.com",
      "i.ytimg.com",
      "www.youtube.com.",
      "fbstatic-a.akamaihd.net",
      "instagram-static.akamaihd.net",
      "edge-mqtt.whatsapp.net",
      "audio-fa.scdn.spotify.com",
      "www.repubblica.it",
      "cdn.ad-server.example",
      "notfacebook.com.evil.example",
      "a.b.c.d.e.f.unmatched.example",
      "mail.google.com",
  };
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string d = kPatterns[i % std::size(kPatterns)];
    if (i % 7 == 0) d = "host" + std::to_string(i % 97) + "." + d;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int conversations = argc > 1 ? std::atoi(argv[1]) : 600;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto out_path = argc > 3 ? std::string(argv[3]) : std::string("BENCH_pipeline.json");
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("probe hot-path bench: %d conversations, %d repeats, %u hardware threads\n",
              conversations, repeats, hw);

  const auto frames = make_traffic_mix(conversations);
  std::vector<ew::net::DecodedPacket> packets;
  packets.reserve(frames.size());
  for (const auto& f : frames) {
    if (auto p = ew::net::decode_frame(f)) packets.push_back(std::move(*p));
  }
  std::printf("traffic mix: %zu frames, %zu decoded packets\n", frames.size(), packets.size());

  std::string samples;

  // ------------------------------------------------------- flow-table churn
  // The packet→flow resolution loop only: resolve each packet to its flow
  // (either orientation), insert on miss, erase every 64th resolved flow to
  // exercise tombstones the way expiry does.
  const double flat_s = best_seconds(repeats, [&] {
    ew::core::FlatHashMap<ew::core::FiveTuple, std::uint64_t, ew::flow::FlowKeyHash> m;
    std::uint64_t n = 0, acc = 0;
    for (const auto& p : packets) {
      const auto t = p.five_tuple();
      auto it = m.find(ew::flow::EitherOrientation{t});
      if (it == m.end()) it = m.try_emplace(t, 0).first;
      acc += ++it->second;
      if (++n % 64 == 0) m.erase(it);
    }
    asm volatile("" ::"r"(acc));
  });
  const double unordered_s = best_seconds(repeats, [&] {
    std::unordered_map<ew::core::FiveTuple, std::uint64_t, ew::core::FiveTupleHash> m;
    std::uint64_t n = 0, acc = 0;
    for (const auto& p : packets) {
      const auto t = p.five_tuple();
      auto it = m.find(t);
      if (it == m.end()) it = m.find(t.reversed());
      if (it == m.end()) it = m.try_emplace(t, 0).first;
      acc += ++it->second;
      if (++n % 64 == 0) m.erase(it);
    }
    asm volatile("" ::"r"(acc));
  });
  append_json(samples, {"flow_table_unordered_map", unordered_s,
                        static_cast<double>(packets.size()) / unordered_s, 1.0});
  append_json(samples, {"flow_table_flat_map", flat_s,
                        static_cast<double>(packets.size()) / flat_s, unordered_s / flat_s});
  std::printf("  table churn: flat %.0f ops/s vs unordered %.0f ops/s (%.2fx)\n",
              packets.size() / flat_s, packets.size() / unordered_s, unordered_s / flat_s);

  // ------------------------------------------------------- classification
  const auto domains = make_domains(50'000);
  ew::services::RuleEngine compiled;
  LegacyRuleEngine legacy;
  load_rules(compiled);
  load_rules(legacy);
  for (const auto& d : domains) {  // engines must agree before we time them
    const auto a = compiled.classify(d);
    const auto b = legacy.classify(d);
    if (a.has_value() != b.has_value() || (a && *a != *b)) {
      std::fprintf(stderr, "engine mismatch on %s\n", d.c_str());
      return 1;
    }
  }
  const double compiled_s = best_seconds(repeats, [&] {
    std::size_t hits = 0;
    for (const auto& d : domains) hits += compiled.classify(d).has_value();
    asm volatile("" ::"r"(hits));
  });
  const double legacy_s = best_seconds(repeats, [&] {
    std::size_t hits = 0;
    for (const auto& d : domains) hits += legacy.classify(d).has_value();
    asm volatile("" ::"r"(hits));
  });
  append_json(samples, {"classify_legacy", legacy_s,
                        static_cast<double>(domains.size()) / legacy_s, 1.0});
  append_json(samples, {"classify_compiled", compiled_s,
                        static_cast<double>(domains.size()) / compiled_s,
                        legacy_s / compiled_s});
  std::printf("  classify: compiled %.0f/s vs legacy %.0f/s (%.2fx)\n",
              domains.size() / compiled_s, domains.size() / legacy_s, legacy_s / compiled_s);

  // --------------------------------------------------------------- decode
  const double decode_s = best_seconds(repeats, [&] {
    std::uint64_t acc = 0;
    for (const auto& f : frames) {
      if (const auto p = ew::net::decode_frame(f)) acc += p->ip.total_length;
    }
    asm volatile("" ::"r"(acc));
  });
  append_json(samples, {"decode", decode_s,
                        static_cast<double>(frames.size()) / decode_s, 1.0});
  std::printf("  decode: %.0f frames/s\n", frames.size() / decode_s);

  // --------------------------------------------------- end-to-end serial
  const double probe_s = best_seconds(repeats, [&] {
    std::uint64_t n = 0;
    ew::probe::Probe p({}, [&n](ew::flow::FlowRecord&&) { ++n; });
    p.process(std::span<const ew::net::Frame>(frames));
    p.finish();
    asm volatile("" ::"r"(n));
  });
  append_json(samples, {"probe_serial", probe_s,
                        static_cast<double>(frames.size()) / probe_s, 1.0});
  std::printf("  probe serial: %.0f frames/s\n", frames.size() / probe_s);

  std::string json = "{\n  \"bench\": \"probe_hotpath\",\n";
  json += "  \"conversations\": " + std::to_string(conversations) + ",\n";
  json += "  \"frames\": " + std::to_string(frames.size()) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"samples\": [\n" + samples + "\n  ]\n}\n";
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
