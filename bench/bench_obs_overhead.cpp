// bench_obs_overhead: the acceptance gate for the obs:: subsystem. Runs
// the same end-to-end serial probe pass as bench_probe_hotpath — the most
// instrumented path in the tree (per-stage sampled timings, batch spans,
// delta-flushed counters) — and writes a JSON fragment for
// BENCH_pipeline.json. Built twice by scripts/bench.sh: the EW_OBS=OFF
// binary (build-noobs/) writes the baseline, the ON binary (build/) reads
// it back with --baseline and fails if metrics cost more than --gate
// percent of throughput.
//
// Usage: bench_obs_overhead [conversations] [repeats] [out.json]
//                           [--baseline file.json] [--gate pct]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/packet.hpp"
#include "obs/obs.hpp"
#include "probe/probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

using Clock = std::chrono::steady_clock;

/// Same traffic shape as bench_probe_hotpath: the overhead number is only
/// meaningful against the workload the hot-path numbers were taken on.
std::vector<ew::net::Frame> make_traffic_mix(int conversations) {
  std::vector<ew::net::Frame> frames;
  for (int i = 0; i < conversations; ++i) {
    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, static_cast<std::uint8_t>((i / 250) % 64),
                                        static_cast<std::uint8_t>(i / 250 % 250),
                                        static_cast<std::uint8_t>(i % 250 + 1)};
    spec.client_port = static_cast<std::uint16_t>(40000 + i % 20000);
    spec.start = ew::core::Timestamp::from_seconds(100 + i % 50);
    spec.rtt_us = 3000 + (i % 7) * 2500;
    spec.response_bytes = 8'000 + (i % 11) * 4'000;
    switch (i % 3) {
      case 0:
        spec.server = ew::core::IPv4Address{157, 240, 1, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kHttp2;
        spec.server_name = "www.facebook.com";
        spec.alpn = "h2";
        break;
      case 1:
        spec.server = ew::core::IPv4Address{93, 184, 216, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kHttp;
        spec.server_name = "www.repubblica.it";
        break;
      default:
        spec.server = ew::core::IPv4Address{173, 194, 4, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.web = ew::dpi::WebProtocol::kQuic;
        break;
    }
    auto conv = ew::synth::render_conversation(spec);
    frames.insert(frames.end(), std::make_move_iterator(conv.begin()),
                  std::make_move_iterator(conv.end()));
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  return frames;
}

template <typename Fn>
double best_seconds(int repeats, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

/// Pull `"items_per_sec": <number>` for the named sample out of a fragment
/// written by this bench (string scan — the format is ours).
double baseline_items_per_sec(const std::string& path, const std::string& sample) {
  std::ifstream in(path);
  if (!in) return -1;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto at = text.find("\"name\": \"" + sample + "\"");
  if (at == std::string::npos) return -1;
  const auto key = text.find("\"items_per_sec\": ", at);
  if (key == std::string::npos) return -1;
  return std::atof(text.c_str() + key + 17);
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults favor a stable best-of: the gate compares peak throughput
  // from two separate processes, and with short runs or few repeats the
  // run-to-run jitter (±6% on a shared box) swamps the real overhead.
  int conversations = 20000;
  int repeats = 10;
  std::string out_path = "BENCH_obs_overhead.json";
  std::string baseline_path;
  double gate_pct = -1;  // no gate unless --gate given
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--gate" && i + 1 < argc) {
      gate_pct = std::atof(argv[++i]);
    } else if (positional == 0) {
      conversations = std::atoi(arg.c_str());
      ++positional;
    } else if (positional == 1) {
      repeats = std::atoi(arg.c_str());
      ++positional;
    } else {
      out_path = arg;
      ++positional;
    }
  }

  std::printf("obs overhead bench: %d conversations, %d repeats, metrics %s\n", conversations,
              repeats, ew::obs::kEnabled ? "ON" : "OFF (baseline build)");

  const auto frames = make_traffic_mix(conversations);
  std::printf("traffic mix: %zu frames\n", frames.size());

  const std::uint64_t frames_counter_before =
      ew::obs::Registry::global().counter("probe_frames_total").value();

  const double probe_s = best_seconds(repeats, [&] {
    std::uint64_t n = 0;
    ew::probe::Probe p({}, [&n](ew::flow::FlowRecord&&) { ++n; });
    p.process(std::span<const ew::net::Frame>(frames));
    p.finish();
    asm volatile("" ::"r"(n));
  });
  const double items_per_sec = static_cast<double>(frames.size()) / probe_s;
  std::printf("  probe serial: %.0f frames/s (%.4f s best-of-%d)\n", items_per_sec, probe_s,
              repeats);

  // Functional check: an enabled build must actually have flushed the
  // replay into the registry — a 0%% overhead from instrumentation that
  // silently compiled out would pass the gate while measuring nothing.
  if (ew::obs::kEnabled) {
    const std::uint64_t flushed =
        ew::obs::Registry::global().counter("probe_frames_total").value() -
        frames_counter_before;
    if (flushed < frames.size()) {
      std::fprintf(stderr, "obs enabled but probe_frames_total advanced %llu < %zu frames\n",
                   static_cast<unsigned long long>(flushed), frames.size());
      return 1;
    }
  }

  double baseline = -1;
  double overhead_pct = 0;
  if (!baseline_path.empty()) {
    baseline = baseline_items_per_sec(baseline_path, "probe_serial");
    if (baseline <= 0) {
      std::fprintf(stderr, "no probe_serial baseline in %s\n", baseline_path.c_str());
      return 1;
    }
    overhead_pct = (baseline - items_per_sec) / baseline * 100.0;
    std::printf("  vs baseline %.0f frames/s: %+.2f%% overhead\n", baseline, overhead_pct);
  }

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n  \"bench\": \"obs_overhead\",\n"
                "  \"conversations\": %d,\n"
                "  \"frames\": %zu,\n"
                "  \"obs_enabled\": %s,\n"
                "  \"baseline_items_per_sec\": %.0f,\n"
                "  \"overhead_pct\": %.2f,\n"
                "  \"samples\": [\n"
                "    {\"name\": \"probe_serial\", \"seconds\": %.4f, "
                "\"items_per_sec\": %.0f, \"speedup\": 1.00}\n  ]\n}\n",
                conversations, frames.size(), ew::obs::kEnabled ? "true" : "false",
                baseline > 0 ? baseline : 0.0, overhead_pct, probe_s, items_per_sec);
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(buf, 1, std::strlen(buf), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (gate_pct >= 0 && baseline > 0 && overhead_pct > gate_pct) {
    std::fprintf(stderr, "obs overhead %.2f%% exceeds the %.1f%% gate\n", overhead_pct,
                 gate_pct);
    return 1;
  }
  return 0;
}
