// Ablation — DN-Hunter (paper §2.1: hostnames are "vital to associate
// traffic flows to web services"). Replays the same traffic through the
// probe with and without the DNS-derived names and reports how the share
// of service-classifiable flows changes; also times the cache itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "probe/probe.hpp"
#include "services/catalog.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

/// Traffic where half the flows expose no SNI/Host (opaque apps, old TLS
/// stacks): exactly the population DN-Hunter exists for.
std::vector<ew::net::Frame> make_traffic(bool with_dns) {
  std::vector<ew::net::Frame> frames;
  const ew::core::IPv4Address resolver{10, 255, 0, 1};
  for (int i = 0; i < 200; ++i) {
    const ew::core::IPv4Address client{10, 0, 1, static_cast<std::uint8_t>(i % 200 + 1)};
    const ew::core::IPv4Address server{158, 85, static_cast<std::uint8_t>(i % 50),
                                       static_cast<std::uint8_t>(i % 200 + 1)};
    const auto t0 = ew::core::Timestamp::from_seconds(1000 + i * 2);
    const bool has_sni = i % 2 == 0;
    if (with_dns && !has_sni) {
      const ew::core::IPv4Address addrs[] = {server};
      frames.push_back(
          ew::synth::render_dns_response(client, resolver, "mmx-ds.cdn.whatsapp.net", addrs, t0));
    }
    ew::synth::ConversationSpec spec;
    spec.client = client;
    spec.client_port = static_cast<std::uint16_t>(41000 + i);
    spec.server = server;
    spec.web = ew::dpi::WebProtocol::kTls;
    spec.server_name = has_sni ? "mmx-ds.cdn.whatsapp.net" : "";
    spec.start = t0 + 50'000;
    spec.response_bytes = 6'000;
    auto conv = ew::synth::render_conversation(spec);
    frames.insert(frames.end(), std::make_move_iterator(conv.begin()),
                  std::make_move_iterator(conv.end()));
  }
  return frames;
}

struct Coverage {
  std::size_t flows = 0;
  std::size_t named = 0;
  std::size_t classified = 0;
};

Coverage run(bool with_dns) {
  Coverage cov;
  const auto& catalog = ew::services::ServiceCatalog::standard();
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) {
                           if (r.server_port == 53) return;  // the DNS flows themselves
                           ++cov.flows;
                           cov.named += !r.server_name.empty();
                           cov.classified += catalog.classify_flow(r.l7, r.server_name) !=
                                             ew::services::ServiceId::kOther;
                         }};
  for (const auto& frame : make_traffic(with_dns)) probe.process(frame);
  probe.finish();
  return cov;
}

void print_reproduction() {
  std::printf("\n================================================================\n");
  std::printf("Ablation: DN-Hunter flow naming (paper §2.1, ref [4])\n");
  std::printf("================================================================\n");
  const auto with = run(true);
  const auto without = run(false);
  std::printf("  traffic: %zu app flows, half without SNI/Host\n", with.flows);
  std::printf("  %-28s %10s %12s\n", "", "named", "classified");
  std::printf("  %-28s %9.1f%% %11.1f%%\n", "SNI/Host only (no DN-Hunter)",
              100.0 * static_cast<double>(without.named) / static_cast<double>(without.flows),
              100.0 * static_cast<double>(without.classified) /
                  static_cast<double>(without.flows));
  std::printf("  %-28s %9.1f%% %11.1f%%\n", "with DN-Hunter",
              100.0 * static_cast<double>(with.named) / static_cast<double>(with.flows),
              100.0 * static_cast<double>(with.classified) / static_cast<double>(with.flows));
}

void BM_DnHunterLookup(benchmark::State& state) {
  ew::dns::DnHunter hunter;
  const ew::core::IPv4Address client{10, 0, 0, 1};
  std::vector<ew::core::IPv4Address> servers;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const ew::core::IPv4Address server{0x9e550000u + i};
    servers.push_back(server);
    const ew::core::IPv4Address addrs[] = {server};
    hunter.observe_response(client, ew::dns::make_a_response(1, "host.example", addrs),
                            ew::core::Timestamp::from_seconds(1));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hunter.lookup(client, servers[i++ % servers.size()], ew::core::Timestamp::from_seconds(2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnHunterLookup);

void BM_DnHunterIngest(benchmark::State& state) {
  const ew::core::IPv4Address client{10, 0, 0, 1};
  const ew::core::IPv4Address addrs[] = {ew::core::IPv4Address{158, 85, 1, 1}};
  const auto msg = ew::dns::make_a_response(1, "mmx-ds.cdn.whatsapp.net", addrs);
  ew::dns::DnHunter hunter;
  for (auto _ : state) {
    hunter.observe_response(client, msg, ew::core::Timestamp::from_seconds(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnHunterIngest);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
