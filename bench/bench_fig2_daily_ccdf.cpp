// Fig. 2 — CCDF of per-active-subscriber daily traffic, April 2014 vs
// April 2017, by access technology and direction. The paper's headline
// reads: bimodal distribution (≈50% of days under 100 MB down / 10 MB up;
// >10% of days above 1 GB / 100 MB); medians doubled 2014→2017; FTTH
// ~25% more download in heavy days; upload tail bump (P2P) gone by 2017.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using bench_common::generator;

namespace {

std::vector<ew::analytics::DayAggregate>& april(int year) {
  static std::vector<ew::analytics::DayAggregate> d14 =
      bench_common::month_aggregates({2014, 4}, 4);
  static std::vector<ew::analytics::DayAggregate> d17 =
      bench_common::month_aggregates({2017, 4}, 4);
  return year == 2014 ? d14 : d17;
}

void print_reproduction() {
  bench_common::header("Figure 2", "CCDF of per-subscriber daily traffic (Apr 2014 vs 2017)");
  const auto dist14 = ew::analytics::daily_volume_distributions(april(2014));
  const auto dist17 = ew::analytics::daily_volume_distributions(april(2017));

  const double mb = 1e6;
  std::printf("  CCDF (download)          ADSL'14  ADSL'17  FTTH'14  FTTH'17\n");
  for (const double x : {10.0, 100.0, 1000.0, 10000.0}) {
    std::printf("    P(down > %6.0f MB)     %6.3f   %6.3f   %6.3f   %6.3f\n", x,
                dist14.down[0].ccdf(x * mb), dist17.down[0].ccdf(x * mb),
                dist14.down[1].ccdf(x * mb), dist17.down[1].ccdf(x * mb));
  }
  std::printf("  CCDF (upload)            ADSL'14  ADSL'17  FTTH'14  FTTH'17\n");
  for (const double x : {1.0, 10.0, 100.0, 1000.0}) {
    std::printf("    P(up   > %6.0f MB)     %6.3f   %6.3f   %6.3f   %6.3f\n", x,
                dist14.up[0].ccdf(x * mb), dist17.up[0].ccdf(x * mb),
                dist14.up[1].ccdf(x * mb), dist17.up[1].ccdf(x * mb));
  }

  bench_common::compare("ADSL down median growth 2014->2017 (x)", "~2x",
                        dist17.down[0].median() / dist14.down[0].median());
  bench_common::compare("FTTH down median growth 2014->2017 (x)", "~2x",
                        dist17.down[1].median() / dist14.down[1].median());
  bench_common::compare("ADSL up median growth 2014->2017 (x)", "~2x",
                        dist17.up[0].median() / dist14.up[0].median());
  bench_common::compare("heavy-day FTTH/ADSL download ratio 2017 (90th pct)", "~1.25",
                        dist17.down[1].quantile(0.9) / dist17.down[0].quantile(0.9));
  bench_common::compare("FTTH/ADSL upload ratio 2017 (90th pct)", "~2",
                        dist17.up[1].quantile(0.9) / dist17.up[0].quantile(0.9));
  // The 2014 upload tail bump that disappears (P2P decline): deep-tail
  // mass beyond 1 GB uploaded is P2P seeding territory.
  bench_common::compare("P(ADSL up > 1 GB) 2014 (P2P seeding bump) x1000", "visible",
                        dist14.up[0].ccdf(1000 * mb) * 1000.0);
  bench_common::compare("P(ADSL up > 1 GB) 2017 (bump gone) x1000", "much smaller",
                        dist17.up[0].ccdf(1000 * mb) * 1000.0);
}

void BM_DailyVolumeDistributions(benchmark::State& state) {
  const auto& days = april(2017);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::daily_volume_distributions(days));
  }
}
BENCHMARK(BM_DailyVolumeDistributions);

void BM_GenerateAprilDay(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator().day_aggregate({2017, 4, 12}));
  }
}
BENCHMARK(BM_GenerateAprilDay);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
