// Fig. 10 — CDFs of per-flow minimum RTT, April 2014 vs April 2017, for
// Facebook/Instagram (a) and YouTube/Google (b). Paper: in 2014 only ~10%
// of Instagram/Facebook flows hit the 3 ms CDN nodes, ~7% travelled
// intercontinental (>100 ms); by 2017 ~80% are served at 3 ms. YouTube was
// already 80% at 3 ms in 2014 and breaks the sub-millisecond barrier in
// 2017 (in-PoP caches); Google search stays at a few ms with no sub-ms
// penetration; WhatsApp remains centralized at ~100 ms.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using ew::services::ServiceId;

namespace {

const std::vector<ew::analytics::DayAggregate>& april(int year) {
  static const auto d14 = bench_common::month_aggregates({2014, 4}, 3);
  static const auto d17 = bench_common::month_aggregates({2017, 4}, 3);
  return year == 2014 ? d14 : d17;
}

void print_cdf(const char* label, const ew::core::EmpiricalDistribution& dist) {
  std::printf("  %-18s", label);
  for (const double x : {0.8, 2.0, 4.0, 10.0, 30.0, 100.0}) {
    std::printf("  P(<%5.1fms)=%.2f", x, dist.cdf(x));
  }
  std::printf("  n=%zu\n", dist.size());
}

void print_reproduction() {
  bench_common::header("Figure 10", "CDF of per-flow min RTT, 2014 vs 2017");
  const auto fb14 = ew::analytics::rtt_distribution(april(2014), ServiceId::kFacebook);
  const auto fb17 = ew::analytics::rtt_distribution(april(2017), ServiceId::kFacebook);
  const auto ig14 = ew::analytics::rtt_distribution(april(2014), ServiceId::kInstagram);
  const auto ig17 = ew::analytics::rtt_distribution(april(2017), ServiceId::kInstagram);
  const auto yt14 = ew::analytics::rtt_distribution(april(2014), ServiceId::kYouTube);
  const auto yt17 = ew::analytics::rtt_distribution(april(2017), ServiceId::kYouTube);
  const auto gg14 = ew::analytics::rtt_distribution(april(2014), ServiceId::kGoogle);
  const auto gg17 = ew::analytics::rtt_distribution(april(2017), ServiceId::kGoogle);
  const auto wa17 = ew::analytics::rtt_distribution(april(2017), ServiceId::kWhatsApp);

  print_cdf("Facebook 2014", fb14);
  print_cdf("Facebook 2017", fb17);
  print_cdf("Instagram 2014", ig14);
  print_cdf("Instagram 2017", ig17);
  print_cdf("YouTube 2014", yt14);
  print_cdf("YouTube 2017", yt17);
  print_cdf("Google 2014", gg14);
  print_cdf("Google 2017", gg17);
  print_cdf("WhatsApp 2017", wa17);

  bench_common::compare("Instagram flows at ~3ms in 2014 (frac)", "~0.10", ig14.cdf(4.0));
  bench_common::compare("Instagram flows at ~3ms in 2017 (frac)", "~0.80", ig17.cdf(4.0));
  bench_common::compare("Facebook flows at ~3ms in 2017 (frac)", "~0.80", fb17.cdf(4.0));
  bench_common::compare("Instagram intercontinental (>100ms) 2014 (frac)", "~0.07",
                        1.0 - ig14.cdf(95.0));
  bench_common::compare("YouTube flows at ~3ms in 2014 (frac)", "~0.80", yt14.cdf(4.0));
  bench_common::compare("YouTube sub-millisecond flows 2014 (frac)", "0", yt14.cdf(1.0));
  bench_common::compare("YouTube sub-millisecond flows 2017 (frac)", "large", yt17.cdf(1.0));
  bench_common::compare("Google sub-millisecond flows 2017 (frac)", "0 (not deployed)",
                        gg17.cdf(1.0));
  bench_common::compare("WhatsApp median RTT 2017 (ms)", "~100", wa17.median());
}

void BM_RttDistribution(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ew::analytics::rtt_distribution(april(2017), ServiceId::kYouTube));
  }
}
BENCHMARK(BM_RttDistribution);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
