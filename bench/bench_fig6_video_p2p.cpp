// Fig. 6 — popularity and per-user volume for P2P, Netflix and YouTube,
// by access technology. Paper: P2P declines in popularity throughout, its
// hardcore moves ~400 MB/day until a late-2016 volume drop; Netflix starts
// with the Italian launch (Oct 2015), FTTH adoption ~10% daily by end
// 2017 and ~1 GB/day after Ultra HD (Oct 2016); YouTube consolidated at
// >40% popularity and >400 MB/user with no ADSL/FTTH difference.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using ew::services::ServiceId;

namespace {

const std::vector<ew::analytics::DayAggregate>& window() {
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    for (ew::core::MonthIndex m{2013, 5}; m <= ew::core::MonthIndex{2017, 9}; m = m + 4) {
      for (const auto d : bench_common::sample_days(m, 2)) {
        out.push_back(bench_common::generator().day_aggregate(d));
      }
    }
    return out;
  }();
  return days;
}

void print_service(ServiceId id) {
  const auto rows = ew::analytics::service_trend(window(), id);
  std::printf("  %s\n", std::string(ew::services::to_string(id)).c_str());
  std::printf("    month     pop%%(ADSL)  pop%%(FTTH)  MB/user(ADSL)  MB/user(FTTH)\n");
  for (const auto& row : rows) {
    std::printf("    %s    %7.2f     %7.2f       %7.0f        %7.0f\n",
                row.month.to_string().c_str(), row.popularity_pct[0], row.popularity_pct[1],
                row.mb_per_user[0], row.mb_per_user[1]);
  }
}

void print_reproduction() {
  bench_common::header("Figure 6", "P2P / Netflix / YouTube popularity and volumes");
  print_service(ServiceId::kPeerToPeer);
  print_service(ServiceId::kNetflix);
  print_service(ServiceId::kYouTube);

  const auto p2p = ew::analytics::service_trend(window(), ServiceId::kPeerToPeer);
  const auto netflix = ew::analytics::service_trend(window(), ServiceId::kNetflix);
  const auto youtube = ew::analytics::service_trend(window(), ServiceId::kYouTube);

  bench_common::compare("P2P ADSL popularity 2013 (%)", "~10", p2p.front().popularity_pct[0]);
  bench_common::compare("P2P ADSL popularity 2017 (%)", "~3", p2p.back().popularity_pct[0]);
  bench_common::compare("P2P hardcore volume mid-window (MB/day)", "~400",
                        p2p[p2p.size() / 2].mb_per_user[0]);
  bench_common::compare("Netflix FTTH popularity end-2017 (%)", "~10",
                        netflix.back().popularity_pct[1]);
  bench_common::compare("Netflix FTTH volume 2017 (MB/day, UHD)", "~1000",
                        netflix.back().mb_per_user[1]);
  bench_common::compare("Netflix ADSL volume 2017 (MB/day, no UHD)", "~500",
                        netflix.back().mb_per_user[0]);
  bench_common::compare("YouTube popularity 2017 (%)", ">40",
                        youtube.back().popularity_pct[0]);
  bench_common::compare("YouTube volume 2017 (MB/day)", ">400",
                        youtube.back().mb_per_user[0]);
  bench_common::compare("YouTube FTTH/ADSL volume ratio (no difference)", "~1",
                        youtube.back().mb_per_user[1] / youtube.back().mb_per_user[0]);

  // §4.3's weekly statistic: subscribers touching Netflix at least once in
  // a week of 2017 ("more than 18% (12%) of FTTH (ADSL) subscribers").
  std::vector<ew::analytics::DayAggregate> week;
  for (int d = 10; d < 17; ++d) {
    week.push_back(bench_common::generator().day_aggregate(
        {2017, 4, static_cast<std::uint8_t>(d)}));
  }
  const auto reach = ew::analytics::service_reach(week, ServiceId::kNetflix);
  bench_common::compare("Netflix weekly reach FTTH 2017 (%)", ">18", reach.pct[1]);
  bench_common::compare("Netflix weekly reach ADSL 2017 (%)", ">12", reach.pct[0]);
}

void BM_ServiceTrend(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::service_trend(window(), ServiceId::kNetflix));
  }
}
BENCHMARK(BM_ServiceTrend);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
