// Fig. 7 — SnapChat, WhatsApp, Instagram: the rise and fall of social
// messaging. Paper: SnapChat peaks near 10% popularity in 2016 moving up
// to 100 MB/day, then collapses below 20 MB while popularity persists;
// WhatsApp saturates >50% with ~10 MB/day and Christmas/New Year peaks;
// Instagram grows to 200 (FTTH) / 120 (ADSL) MB/day — a quarter of
// Netflix's per-user traffic.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using ew::services::ServiceId;

namespace {

const std::vector<ew::analytics::DayAggregate>& window() {
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    for (ew::core::MonthIndex m{2013, 5}; m <= ew::core::MonthIndex{2017, 9}; m = m + 4) {
      for (const auto d : bench_common::sample_days(m, 2)) {
        out.push_back(bench_common::generator().day_aggregate(d));
      }
    }
    return out;
  }();
  return days;
}

void print_service(ServiceId id) {
  const auto rows = ew::analytics::service_trend(window(), id);
  std::printf("  %s\n", std::string(ew::services::to_string(id)).c_str());
  std::printf("    month     pop%%(ADSL)  pop%%(FTTH)  MB/user(ADSL)  MB/user(FTTH)\n");
  for (const auto& row : rows) {
    std::printf("    %s    %7.2f     %7.2f       %7.1f        %7.1f\n",
                row.month.to_string().c_str(), row.popularity_pct[0], row.popularity_pct[1],
                row.mb_per_user[0], row.mb_per_user[1]);
  }
}

void print_reproduction() {
  bench_common::header("Figure 7", "SnapChat / WhatsApp / Instagram");
  print_service(ServiceId::kSnapChat);
  print_service(ServiceId::kWhatsApp);
  print_service(ServiceId::kInstagram);

  const auto snap = ew::analytics::service_trend(window(), ServiceId::kSnapChat);
  const auto whatsapp = ew::analytics::service_trend(window(), ServiceId::kWhatsApp);
  const auto instagram = ew::analytics::service_trend(window(), ServiceId::kInstagram);
  const auto netflix = ew::analytics::service_trend(window(), ServiceId::kNetflix);

  double snap_peak_vol = 0, snap_peak_pop = 0;
  for (const auto& row : snap) {
    snap_peak_vol = std::max(snap_peak_vol, row.mb_per_user[0]);
    snap_peak_pop = std::max(snap_peak_pop, row.popularity_pct[0]);
  }
  bench_common::compare("SnapChat peak popularity (%)", "~10", snap_peak_pop);
  bench_common::compare("SnapChat peak volume (MB/day)", "~100", snap_peak_vol);
  bench_common::compare("SnapChat 2017 volume (MB/day, collapsed)", "<20",
                        snap.back().mb_per_user[0]);
  bench_common::compare("WhatsApp popularity 2017 (%, saturated)", ">50",
                        whatsapp.back().popularity_pct[0]);
  bench_common::compare("WhatsApp volume 2017 (MB/day)", "~10",
                        whatsapp.back().mb_per_user[0]);
  bench_common::compare("Instagram ADSL volume 2017 (MB/day)", "~120",
                        instagram.back().mb_per_user[0]);
  bench_common::compare("Instagram FTTH volume 2017 (MB/day)", "~200",
                        instagram.back().mb_per_user[1]);
  bench_common::compare("Instagram/Netflix per-user ratio", "~0.25 ('a quarter')",
                        instagram.back().mb_per_user[1] / netflix.back().mb_per_user[1]);

  // WhatsApp holiday spikes: compare Dec 25 vs a plain December day.
  std::vector<ew::analytics::DayAggregate> christmas, ordinary;
  christmas.push_back(bench_common::generator().day_aggregate({2016, 12, 25}));
  ordinary.push_back(bench_common::generator().day_aggregate({2016, 12, 13}));
  const auto wa_xmas = ew::analytics::service_trend(christmas, ServiceId::kWhatsApp);
  const auto wa_plain = ew::analytics::service_trend(ordinary, ServiceId::kWhatsApp);
  bench_common::compare("WhatsApp Christmas/ordinary volume ratio", ">2 (peaks)",
                        wa_xmas.back().mb_per_user[0] / wa_plain.back().mb_per_user[0]);
}

void BM_SocialTrends(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::service_trend(window(), ServiceId::kInstagram));
  }
}
BENCHMARK(BM_SocialTrends);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
