// Fig. 4 — ratio of download volume April 2017 / April 2014 per hour of
// day. Paper: overall ratio above 2; highest increase during late-night
// hours (automatic updates, IoT); FTTH shows an extra prime-time bump.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;

namespace {

const std::vector<ew::analytics::DayAggregate>& april14() {
  static const auto d = bench_common::month_aggregates({2014, 4}, 4);
  return d;
}
const std::vector<ew::analytics::DayAggregate>& april17() {
  static const auto d = bench_common::month_aggregates({2017, 4}, 4);
  return d;
}

void print_reproduction() {
  bench_common::header("Figure 4", "hourly download ratio April 2017 / April 2014");
  const auto ratios = ew::analytics::hourly_ratio(april17(), april14());
  std::printf("  hour   ADSL ratio  FTTH ratio\n");
  for (int h = 0; h < 24; ++h) {
    std::printf("  %02d:00    %6.2f      %6.2f\n", h, ratios.ratio[0][h], ratios.ratio[1][h]);
  }
  double adsl_day = 0, adsl_night = 0, ftth_prime = 0, ftth_day = 0;
  for (int h = 10; h < 18; ++h) adsl_day += ratios.ratio[0][h] / 8.0;
  for (int h = 1; h < 6; ++h) adsl_night += ratios.ratio[0][h] / 5.0;
  for (int h = 20; h < 23; ++h) ftth_prime += ratios.ratio[1][h] / 3.0;
  for (int h = 10; h < 18; ++h) ftth_day += ratios.ratio[1][h] / 8.0;
  bench_common::compare("ADSL daytime average ratio", ">2", adsl_day);
  bench_common::compare("ADSL late-night ratio (automatic traffic)", "higher than day",
                        adsl_night);
  bench_common::compare("night/day ratio of ratios (ADSL)", ">1", adsl_night / adsl_day);
  bench_common::compare("FTTH prime-time ratio (video)", "> daytime", ftth_prime);
  bench_common::compare("prime/day ratio of ratios (FTTH)", ">1", ftth_prime / ftth_day);
}

void BM_HourlyRatio(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::hourly_ratio(april17(), april14()));
  }
}
BENCHMARK(BM_HourlyRatio);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
