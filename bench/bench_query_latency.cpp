// Query-latency harness (run by scripts/bench.sh): the tentpole claim of
// the rollup store is that paper-figure queries over a multi-year range
// answer from per-day sketch rollups without touching raw flow logs. This
// bench materializes a multi-year lake, builds the rollup store once, then
// times three representative queries both ways:
//
//   - raw_full_scan      decode + aggregate every day's flow log (the cost
//                        any figure pays without rollups)
//   - bytes_by_service   total bytes per service over the whole range
//   - volume_trend       Fig. 3's monthly per-subscriber averages
//   - protocol_shares    Fig. 8's monthly web-protocol mix
//
// Each rollup query reports its speedup over the raw scan; the acceptance
// target is >= 10x for the multi-year range. Results land in a JSON
// fragment that scripts/bench.sh merges into BENCH_pipeline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "analytics/figures.hpp"
#include "analytics/parallel.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "query/engine.hpp"
#include "query/figures.hpp"
#include "query/store.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Sample {
  std::string name;
  double seconds = 0;
  double speedup = 0;  ///< vs raw_full_scan; 0 = not a query
};

void append_json(std::string& out, const Sample& s) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"%s\", \"seconds\": %.6f, \"speedup_vs_scan\": %.1f}",
                s.name.c_str(), s.seconds, s.speedup);
  if (!out.empty()) out += ",\n";
  out += buf;
}

/// Best-of-N wall time of `fn`.
template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int months = argc > 1 ? std::atoi(argv[1]) : 25;  // Jun 2014 .. Jun 2016
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto out_path = argc > 3 ? std::string(argv[3]) : std::string("BENCH_query_latency.json");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // Two sample days per month keeps the lake multi-year in *span* (what the
  // query planner sees) while the build stays CI-sized.
  const auto scenario = ew::synth::build_paper_scenario(/*seed=*/42, /*scale=*/0.05);
  const ew::synth::WorkloadGenerator gen{scenario};
  const auto dir = fs::temp_directory_path() / "ew_bench_query_latency";
  fs::remove_all(dir);
  ew::storage::DataLake lake{dir / "lake"};

  std::vector<ew::core::CivilDate> days;
  ew::core::MonthIndex month{2014, 6};
  for (int m = 0; m < months; ++m, month = month + 1) {
    for (const int d : {10, 20}) {
      const ew::core::CivilDate day{month.year(), static_cast<std::uint8_t>(month.month()),
                                    static_cast<std::uint8_t>(d)};
      days.push_back(day);
      if (!lake.append(day, gen.day_records(day))) {
        std::fprintf(stderr, "lake append failed for %s\n", day.to_string().c_str());
        return 1;
      }
    }
  }
  std::printf("query latency bench: %zu days spanning %s..%s, %d repeats, %u hw threads\n",
              days.size(), days.front().to_string().c_str(), days.back().to_string().c_str(),
              repeats, hw);

  std::string samples;

  // Raw path: what every figure costs without rollups — decode and
  // aggregate each day's flow log, then derive the figures.
  std::vector<ew::analytics::DayAggregate> aggregates;
  const double raw_s = best_of(repeats, [&] {
    aggregates.clear();
    for (const auto day : days) {
      aggregates.push_back(ew::analytics::aggregate_day(lake, day).aggregate);
    }
    (void)ew::analytics::volume_trend(aggregates);
    (void)ew::analytics::protocol_shares(aggregates);
  });
  append_json(samples, {"raw_full_scan", raw_s, 0});
  std::printf("  raw full scan:       %8.3f s\n", raw_s);

  // One-time rollup build (all days, all dimensions) — the amortized cost.
  ew::core::ThreadPool pool{hw};
  ew::query::RollupStore store{dir / "rollups", lake, ew::services::ServiceCatalog::standard(),
                               scenario.rib.get()};
  const auto t0 = Clock::now();
  const auto report = store.build(pool);
  const double build_s = seconds_since(t0);
  if (!report.ok()) {
    std::fprintf(stderr, "rollup build failed (%zu failures)\n", report.failed);
    return 1;
  }
  append_json(samples, {"rollup_build_once", build_s, 0});
  std::printf("  rollup build (once): %8.3f s  (%zu files)\n", build_s, report.built);

  const auto time_query = [&](const char* name, auto&& fn) {
    const double s = best_of(repeats, fn);
    const double speedup = s > 0 ? raw_s / s : 0;
    append_json(samples, {name, s, speedup});
    std::printf("  %-20s %8.4f s  %7.0fx vs scan\n", name, s, speedup);
    return speedup;
  };

  double min_speedup = 1e100;
  min_speedup = std::min(min_speedup, time_query("bytes_by_service", [&] {
                           ew::query::QuerySpec spec;
                           spec.metric = ew::query::Metric::kBytes;
                           spec.dimension = ew::query::Dimension::kService;
                           spec.from = days.front();
                           spec.to = days.back();
                           (void)ew::query::run_query(store, spec, &pool);
                         }));
  min_speedup = std::min(min_speedup, time_query("volume_trend", [&] {
                           (void)ew::query::volume_trend(store, days.front(), days.back(), &pool);
                         }));
  min_speedup = std::min(min_speedup, time_query("protocol_shares", [&] {
                           (void)ew::query::protocol_shares(store, days.front(), days.back(),
                                                            &pool);
                         }));
  std::printf("  slowest rollup query: %.0fx vs raw scan (target >= 10x)\n", min_speedup);

  std::string json = "{\n";
  json += "  \"bench\": \"query_latency\",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"days\": " + std::to_string(days.size()) + ",\n";
  json += "  \"months\": " + std::to_string(months) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"min_query_speedup\": " + std::to_string(min_speedup) + ",\n";
  json += "  \"samples\": [\n" + samples + "\n  ]\n}\n";
  bool wrote = false;
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    wrote = true;
    std::printf("wrote %s\n", out_path.c_str());
  }
  fs::remove_all(dir);
  return wrote ? 0 : 1;
}
