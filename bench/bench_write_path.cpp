// Lake write-path harness (run by scripts/bench.sh): the tentpole claim of
// the write-path overhaul is that ingest→sealed-day-file throughput is
// >= 2x the pre-overhaul serial writer's, from two independent levers:
//
//   1. codec v2 — the adaptive per-segment codec (FOR-bitpack / RLE /
//      stored / LZ, smallest wins) replaces the layout-1 encoder's
//      LZ-everything pass, so even a single core encodes blocks faster;
//   2. the pipelined encoder — with an encode pool, per-block
//      serialize/transpose/compress runs across workers while frames
//      commit in order, so wall time shrinks with cores.
//
// Both levers are measured separately and combined into one
// effective-speedup estimate vs the pre-overhaul writer (its per-block
// encode cost is re-measured live with the frozen layout-1 encoder, so the
// baseline does not rot as the scenario changes). Hard exit-code gates
// keep the bench honest even as a CI smoke run: the parallel file must be
// byte-identical to the serial one, and the codec-v2 day file must not be
// more than 2% larger than the layout-1 encoding of the same blocks
// (in practice it is smaller). --min-speedup adds the throughput gate for
// machines with enough cores to express it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bytes.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "obs/obs.hpp"
#include "services/catalog.hpp"
#include "storage/columnar.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

std::vector<std::byte> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<std::byte> out(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()));
  return out;
}

struct CodecTotals {
  std::uint64_t in[4] = {0, 0, 0, 0};
  std::uint64_t out[4] = {0, 0, 0, 0};
};

CodecTotals codec_totals() {
  CodecTotals t;
  if constexpr (ew::obs::kEnabled) {
    static const char* kIn[] = {"lake_codec_stored_bytes_in_total", "lake_codec_lz_bytes_in_total",
                                "lake_codec_for_bytes_in_total", "lake_codec_rle_bytes_in_total"};
    static const char* kOut[] = {"lake_codec_stored_bytes_out_total",
                                 "lake_codec_lz_bytes_out_total",
                                 "lake_codec_for_bytes_out_total",
                                 "lake_codec_rle_bytes_out_total"};
    auto& reg = ew::obs::Registry::global();
    for (int k = 0; k < 4; ++k) {
      t.in[k] = reg.counter(kIn[k]).value();
      t.out[k] = reg.counter(kOut[k]).value();
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  int day_count = 6;
  int repeats = 3;
  std::string out_path = "BENCH_write_path.json";
  double min_speedup = -1;  // no throughput gate unless --min-speedup given
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (positional == 0) {
      day_count = std::atoi(arg.c_str());
      ++positional;
    } else if (positional == 1) {
      repeats = std::atoi(arg.c_str());
      ++positional;
    } else {
      out_path = arg;
    }
  }

  // One big multi-block day: several synthetic days' records merged and
  // time-sorted, same workload shape the scan benches use.
  const auto scenario = ew::synth::build_paper_scenario(/*seed=*/7, /*scale=*/0.2);
  const ew::synth::WorkloadGenerator gen{scenario};
  const ew::core::CivilDate base{2015, 6, 1};
  std::vector<ew::flow::FlowRecord> records;
  for (int d = 0; d < day_count; ++d) {
    const auto z = ew::core::days_from_civil(base) + d;
    auto day_recs = gen.day_records(ew::core::civil_from_days(z));
    records.insert(records.end(), std::make_move_iterator(day_recs.begin()),
                   std::make_move_iterator(day_recs.end()));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const ew::flow::FlowRecord& a, const ew::flow::FlowRecord& b) {
                     return a.first_packet < b.first_packet;
                   });

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers = std::min<std::size_t>(hw, 8);
  const auto dir = fs::temp_directory_path() / "ew_bench_write_path";
  fs::remove_all(dir);

  // --- lever 1: per-block encode, frozen layout-1 writer vs codec v2 ----
  const auto& catalog = ew::services::ServiceCatalog::standard();
  const std::size_t block_n = ew::storage::DataLake::kBlockRecords;
  const std::size_t nblocks = (records.size() + block_n - 1) / block_n;
  const auto chunk = [&](std::size_t i) {
    const std::size_t lo = i * block_n;
    return std::span<const ew::flow::FlowRecord>{records}.subspan(
        lo, std::min(block_n, records.size() - lo));
  };
  ew::core::ByteWriter body;
  std::uint64_t l1_bytes = 0, l2_bytes = 0;
  const double l1_encode_s = best_of(repeats, [&] {
    l1_bytes = 0;
    for (std::size_t i = 0; i < nblocks; ++i) {
      body.clear();
      ew::storage::encode_columnar_block_layout1(chunk(i), catalog, body);
      l1_bytes += body.view().size();
    }
  });
  // Codec v2 with the same chain policy the lake applies (delta dicts
  // against the previous block, chain restart every kDictChainInterval).
  ew::storage::EncodeScratch scratch;
  ew::storage::DictChainState chain;
  const double l2_encode_s = best_of(repeats, [&] {
    l2_bytes = 0;
    for (std::size_t i = 0; i < nblocks; ++i) {
      body.clear();
      const ew::storage::DictChainState* prev = nullptr;
      if (i % ew::storage::kDictChainInterval != 0) {
        ew::storage::build_dict_chain_state(chunk(i - 1), chain);
        prev = &chain;
      }
      ew::storage::encode_columnar_block(chunk(i), catalog, body, scratch, prev);
      l2_bytes += body.view().size();
    }
  });
  const double codec_speedup = l2_encode_s > 0 ? l1_encode_s / l2_encode_s : 0;
  const double size_ratio = l1_bytes > 0 ? double(l2_bytes) / double(l1_bytes) : 0;

  // --- lever 2: full append (ingest -> sealed file), serial vs pooled ---
  ew::storage::DataLake lake{dir / "lake"};
  const auto path = lake.root() / ew::storage::DataLake::day_filename(base);
  const CodecTotals before = codec_totals();
  const double serial_s = best_of(repeats, [&] {
    (void)lake.remove_day(base);
    if (!lake.append(base, records)) {
      std::fprintf(stderr, "serial append failed\n");
      std::exit(1);
    }
  });
  const CodecTotals after = codec_totals();
  const auto serial_file = file_bytes(path);

  ew::core::ThreadPool pool(workers);
  lake.set_encode_pool(&pool);
  const double parallel_s = best_of(repeats, [&] {
    (void)lake.remove_day(base);
    if (!lake.append(base, records)) {
      std::fprintf(stderr, "parallel append failed\n");
      std::exit(1);
    }
  });
  lake.set_encode_pool(nullptr);
  const auto parallel_file = file_bytes(path);

  const double pipeline_speedup = parallel_s > 0 ? serial_s / parallel_s : 0;
  // The pre-overhaul writer = today's serial append with its codec-v2
  // encode time swapped back for the layout-1 encode time; against the
  // pooled append that yields the end-to-end claim.
  const double prepr_serial_s = serial_s - l2_encode_s + l1_encode_s;
  const double effective_speedup = parallel_s > 0 ? prepr_serial_s / parallel_s : 0;
  const double mb = double(serial_file.size()) / 1e6;

  std::printf("write path bench: %zu records, %zu blocks, %zu workers, %d repeats\n",
              records.size(), nblocks, workers, repeats);
  std::printf("  layout-1 encode:   %8.3f s  (%.1f MB of block bodies)\n", l1_encode_s,
              l1_bytes / 1e6);
  std::printf("  codec-v2 encode:   %8.3f s  (%.1f MB, %.2fx vs layout-1, size x%.3f)\n",
              l2_encode_s, l2_bytes / 1e6, codec_speedup, size_ratio);
  std::printf("  serial append:     %8.3f s  (%.1f MB/s, %.2fM flows/s)\n", serial_s,
              mb / serial_s, records.size() / serial_s / 1e6);
  std::printf("  pooled append:     %8.3f s  (%.1f MB/s, %.2fM flows/s, %.2fx vs serial)\n",
              parallel_s, mb / parallel_s, records.size() / parallel_s / 1e6,
              pipeline_speedup);
  std::printf("  vs pre-overhaul:   %.2fx  (estimated pre-overhaul serial: %.3f s)\n",
              effective_speedup, prepr_serial_s);
  static const char* kScheme[] = {"stored", "lz", "for", "rle"};
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t din = after.in[k] - before.in[k];
    const std::uint64_t dout = after.out[k] - before.out[k];
    if (din == 0) continue;
    std::printf("  codec %-6s %10.1f MB in -> %8.1f MB out  (x%.3f)\n", kScheme[k], din / 1e6,
                dout / 1e6, double(dout) / double(din));
  }

  // Gate 1: the pipeline must be invisible in the bytes.
  if (serial_file.empty() || serial_file != parallel_file) {
    std::fprintf(stderr, "FAIL: pooled append produced different bytes (%zu vs %zu)\n",
                 parallel_file.size(), serial_file.size());
    return 1;
  }
  // Gate 2: codec v2 must not grow the day file by more than 2%.
  if (size_ratio > 1.02) {
    std::fprintf(stderr, "FAIL: codec-v2 bodies %.1f%% larger than layout-1 (budget 2%%)\n",
                 100 * (size_ratio - 1));
    return 1;
  }
  // Gate 3 (opt-in): end-to-end throughput vs the pre-overhaul writer.
  if (min_speedup > 0 && effective_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: %.2fx vs pre-overhaul writer (need >= %.2fx)\n",
                 effective_speedup, min_speedup);
    return 1;
  }

  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"write_path\",\n"
                "  \"records\": %zu,\n"
                "  \"blocks\": %zu,\n"
                "  \"workers\": %zu,\n"
                "  \"repeats\": %d,\n"
                "  \"layout1_encode_s\": %.6f,\n"
                "  \"codec_v2_encode_s\": %.6f,\n"
                "  \"codec_speedup\": %.2f,\n"
                "  \"body_size_ratio_vs_layout1\": %.4f,\n"
                "  \"serial_append_s\": %.6f,\n"
                "  \"parallel_append_s\": %.6f,\n"
                "  \"pipeline_speedup\": %.2f,\n"
                "  \"effective_speedup_vs_pre_overhaul\": %.2f,\n"
                "  \"file_mb\": %.2f,\n"
                "  \"parallel_mb_s\": %.2f,\n"
                "  \"parallel_flows_s\": %.0f,\n"
                "  \"codec_bytes_out\": {\"stored\": %llu, \"lz\": %llu, \"for\": %llu, "
                "\"rle\": %llu}\n"
                "}\n",
                records.size(), nblocks, workers, repeats, l1_encode_s, l2_encode_s,
                codec_speedup, size_ratio, serial_s, parallel_s, pipeline_speedup,
                effective_speedup, mb, mb / parallel_s, records.size() / parallel_s,
                static_cast<unsigned long long>(after.out[0] - before.out[0]),
                static_cast<unsigned long long>(after.out[1] - before.out[1]),
                static_cast<unsigned long long>(after.out[2] - before.out[2]),
                static_cast<unsigned long long>(after.out[3] - before.out[3]));
  bool wrote = false;
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(buf, f);
    std::fclose(f);
    wrote = true;
    std::printf("wrote %s\n", out_path.c_str());
  }
  fs::remove_all(dir);
  return wrote ? 0 : 1;
}
