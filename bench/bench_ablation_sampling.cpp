// Ablation — packet sampling. The paper stresses that its probes see
// every packet ("Since probes are deployed in the first level of
// aggregation of the ISP, no traffic sampling is performed", §2.1). This
// bench replays identical traffic at sampling rates 1, 10 and 100 and
// shows what sampled monitoring would have cost the study: flows missed
// outright, DPI blinded (the one packet carrying the SNI is usually
// dropped), RTT samples gone, and biased byte counts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/rng.hpp"
#include "probe/probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

std::vector<ew::net::Frame> make_traffic() {
  std::vector<ew::net::Frame> frames;
  ew::core::Xoshiro256 rng{2018};
  for (int i = 0; i < 250; ++i) {
    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, 0, 2, static_cast<std::uint8_t>(i % 250 + 1)};
    spec.client_port = static_cast<std::uint16_t>(42000 + i);
    spec.server = ew::core::IPv4Address{157, 240, 9, static_cast<std::uint8_t>(i % 200 + 1)};
    spec.web = ew::dpi::WebProtocol::kTls;
    spec.server_name = "www.facebook.com";
    spec.start = ew::core::Timestamp::from_seconds(5000 + i * 3);
    spec.rtt_us = 5'000;
    // Heavy-tailed flow sizes: most flows are mice, a few are elephants.
    spec.response_bytes =
        static_cast<std::size_t>(ew::core::pareto_bounded(rng, 1.1, 2'000, 200'000));
    auto conv = ew::synth::render_conversation(spec);
    frames.insert(frames.end(), std::make_move_iterator(conv.begin()),
                  std::make_move_iterator(conv.end()));
  }
  return frames;
}

struct Outcome {
  std::uint64_t flows = 0;
  std::uint64_t named = 0;
  std::uint64_t with_rtt = 0;
  std::uint64_t bytes = 0;
};

Outcome run(const std::vector<ew::net::Frame>& frames, std::uint32_t rate) {
  ew::probe::ProbeConfig cfg;
  cfg.sample_rate = rate;
  Outcome out;
  ew::probe::Probe probe{cfg, [&](ew::flow::FlowRecord&& r) {
                           ++out.flows;
                           out.named += !r.server_name.empty();
                           out.with_rtt += r.rtt.samples > 0;
                           out.bytes += r.total_bytes();
                         }};
  for (const auto& f : frames) probe.process(f);
  probe.finish();
  return out;
}

void print_reproduction() {
  std::printf("\n================================================================\n");
  std::printf("Ablation: packet sampling vs the paper's sample-everything probes\n");
  std::printf("================================================================\n");
  const auto frames = make_traffic();
  const auto full = run(frames, 1);
  std::printf("  ground truth: %llu flows, %.1f MB\n",
              static_cast<unsigned long long>(full.flows),
              static_cast<double>(full.bytes) / 1e6);
  std::printf("  %-10s %10s %10s %12s %14s\n", "rate", "flows", "named%", "with-RTT%",
              "byte est. err%");
  for (const std::uint32_t rate : {1u, 10u, 100u}) {
    const auto got = run(frames, rate);
    const double scale = static_cast<double>(rate);
    const double est = static_cast<double>(got.bytes) * scale;
    std::printf("  1-in-%-5u %10llu %9.1f%% %11.1f%% %13.1f%%\n", rate,
                static_cast<unsigned long long>(got.flows),
                got.flows ? 100.0 * static_cast<double>(got.named) /
                                static_cast<double>(got.flows)
                          : 0.0,
                got.flows ? 100.0 * static_cast<double>(got.with_rtt) /
                                static_cast<double>(got.flows)
                          : 0.0,
                100.0 * (est - static_cast<double>(full.bytes)) /
                    static_cast<double>(full.bytes));
  }
  std::printf("  (sampled rows lose flows, hostnames and RTT: the study's per-\n");
  std::printf("   service and per-server analyses would be impossible)\n");
}

void BM_ProbeFullRate(benchmark::State& state) {
  const auto frames = make_traffic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(frames, 1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_ProbeFullRate);

void BM_ProbeSampled100(benchmark::State& state) {
  const auto frames = make_traffic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(frames, 100));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_ProbeSampled100);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
