// Fig. 8 — web-protocol breakdown over five years, with the paper's
// lettered events: (A) YouTube→HTTPS from Jan 2014, HTTPS tops 40% at end
// 2014; (B) QUIC appears Oct 2014; (C) probes start reporting SPDY in June
// 2015 revealing ~10% share; (D) QUIC disabled Dec 2015 for ~1 month;
// (E) SPDY→HTTP/2 from Feb 2016; (F) FB-Zero: ~8% of web traffic appears
// suddenly in Nov 2016. End of 2017: HTTP down to ~25%, QUIC+Zero 20-25%.
#include "analytics/figures.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using WP = ew::dpi::WebProtocol;

namespace {

const std::vector<ew::analytics::DayAggregate>& window() {
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    // Fine-grained sampling to catch the sudden events.
    const ew::core::CivilDate probes[] = {
        {2013, 6, 10}, {2013, 12, 10}, {2014, 3, 10}, {2014, 9, 10},  {2014, 12, 10},
        {2015, 5, 10}, {2015, 8, 10},  {2015, 11, 20}, {2015, 12, 20}, {2016, 1, 25},
        {2016, 6, 10}, {2016, 10, 20}, {2016, 12, 10}, {2017, 4, 10},  {2017, 9, 20},
    };
    for (const auto d : probes) out.push_back(bench_common::generator().day_aggregate(d));
    return out;
  }();
  return days;
}

double share(const ew::analytics::ProtocolShareRow& row, WP p) {
  return row.share_pct[static_cast<std::size_t>(p)];
}

void print_reproduction() {
  bench_common::header("Figure 8", "web protocol breakdown 2013-2017 (percent of web bytes)");
  const auto rows = ew::analytics::protocol_shares(window());
  std::printf("  month      HTTP    TLS   SPDY  HTTP/2  QUIC  FB-ZERO\n");
  for (const auto& row : rows) {
    std::printf("  %s   %5.1f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f\n",
                row.month.to_string().c_str(), share(row, WP::kHttp), share(row, WP::kTls),
                share(row, WP::kSpdy), share(row, WP::kHttp2), share(row, WP::kQuic),
                share(row, WP::kFbZero));
  }

  auto at = [&rows](int year, unsigned month) -> const ew::analytics::ProtocolShareRow& {
    for (const auto& row : rows) {
      if (row.month == ew::core::MonthIndex{year, month}) return row;
    }
    return rows.front();
  };
  bench_common::compare("TLS share 2013 (%)", "~13", share(at(2013, 6), WP::kTls));
  bench_common::compare("(A) HTTPS-family share end-2014 (%)", "~40",
                        share(at(2014, 12), WP::kTls) + share(at(2014, 12), WP::kSpdy) +
                            share(at(2014, 12), WP::kHttp2));
  bench_common::compare("(B) QUIC share Dec 2014 (%, just started)", ">0",
                        share(at(2014, 12), WP::kQuic));
  bench_common::compare("(C) SPDY share pre-upgrade May 2015 (%)", "0 (hidden)",
                        share(at(2015, 5), WP::kSpdy));
  bench_common::compare("(C) SPDY share Aug 2015 (%, revealed)", "~10",
                        share(at(2015, 8), WP::kSpdy));
  bench_common::compare("(D) QUIC share Nov 2015 (%)", "~8", share(at(2015, 11), WP::kQuic));
  bench_common::compare("(D) QUIC share during blackout Dec 2015 (%)", "0",
                        share(at(2015, 12), WP::kQuic));
  bench_common::compare("(D) QUIC share Jan 2016 (%, back)", "~8",
                        share(at(2016, 1), WP::kQuic));
  bench_common::compare("(E) SPDY share mid-2016 (%, dying)", "small",
                        share(at(2016, 6), WP::kSpdy));
  bench_common::compare("(E) HTTP/2 share mid-2016 (%)", "growing",
                        share(at(2016, 6), WP::kHttp2));
  bench_common::compare("(F) FB-Zero share Oct 2016 (%)", "0", share(at(2016, 10), WP::kFbZero));
  bench_common::compare("(F) FB-Zero share Dec 2016 (%)", "~8", share(at(2016, 12), WP::kFbZero));
  bench_common::compare("HTTP share end-2017 (%)", "~25", share(at(2017, 9), WP::kHttp));
  bench_common::compare("QUIC+Zero share end-2017 (%)", "20-25",
                        share(at(2017, 9), WP::kQuic) + share(at(2017, 9), WP::kFbZero));
}

void BM_ProtocolShares(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::protocol_shares(window()));
  }
}
BENCHMARK(BM_ProtocolShares);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
