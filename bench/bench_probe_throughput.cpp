// §2.1 — the probe must keep line rate on aggregation links (the paper's
// probes do 10 Gb/s with DPDK; ref [31]). This bench measures the software
// pipeline: frame decode → flow table → DPI → export, on a realistic mix
// of conversations (TLS with SNI, HTTP, QUIC, P2P, DNS).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "probe/probe.hpp"
#include "probe/sharded_probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

std::vector<ew::net::Frame> make_traffic_mix() {
  std::vector<ew::net::Frame> frames;
  const ew::core::IPv4Address server_tls{157, 240, 1, 9};
  const ew::core::IPv4Address server_http{93, 184, 216, 34};
  const ew::core::IPv4Address server_quic{173, 194, 4, 4};
  for (int i = 0; i < 120; ++i) {
    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, 0, static_cast<std::uint8_t>(i / 250),
                                        static_cast<std::uint8_t>(i % 250 + 1)};
    spec.client_port = static_cast<std::uint16_t>(40000 + i);
    spec.start = ew::core::Timestamp::from_seconds(100 + i);
    spec.rtt_us = 3000 + (i % 7) * 2500;
    spec.response_bytes = 20'000 + (i % 11) * 8'000;
    switch (i % 4) {
      case 0:
        spec.server = server_tls;
        spec.web = ew::dpi::WebProtocol::kHttp2;
        spec.server_name = "www.facebook.com";
        spec.alpn = "h2";
        break;
      case 1:
        spec.server = server_http;
        spec.web = ew::dpi::WebProtocol::kHttp;
        spec.server_name = "www.repubblica.it";
        break;
      case 2:
        spec.server = server_quic;
        spec.web = ew::dpi::WebProtocol::kQuic;
        break;
      default:
        spec.server = ew::core::IPv4Address{93, 33, 44, static_cast<std::uint8_t>(i % 200 + 1)};
        spec.p2p = true;
        spec.server_port = 51413;
        break;
    }
    auto conv = ew::synth::render_conversation(spec);
    frames.insert(frames.end(), std::make_move_iterator(conv.begin()),
                  std::make_move_iterator(conv.end()));
  }
  // Keep per-flow ordering but approximate a live interleaving by time.
  std::stable_sort(frames.begin(), frames.end(),
                   [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  return frames;
}

void BM_ProbePipeline(benchmark::State& state) {
  const auto frames = make_traffic_mix();
  std::uint64_t bytes = 0;
  for (const auto& f : frames) bytes += f.data.size();
  std::uint64_t records = 0;
  for (auto _ : state) {
    ew::probe::Probe probe{{}, [&records](ew::flow::FlowRecord&&) { ++records; }};
    for (const auto& frame : frames) probe.process(frame);
    probe.finish();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  state.counters["flows"] =
      benchmark::Counter(static_cast<double>(records) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ProbePipeline);

// The sharded parallel probe at 1/2/4/8 shards on the same mix. Compare
// against BM_ProbePipeline: shards=1 shows the queueing overhead, higher
// counts the scaling (bounded by physical cores — see the
// hardware_concurrency line scripts/bench.sh records).
void BM_ShardedProbeIngest(benchmark::State& state) {
  const auto frames = make_traffic_mix();
  std::uint64_t bytes = 0;
  for (const auto& f : frames) bytes += f.data.size();
  std::uint64_t records = 0;
  for (auto _ : state) {
    ew::probe::ShardedProbeConfig cfg;
    cfg.shards = static_cast<std::size_t>(state.range(0));
    ew::probe::ShardedProbe probe{cfg};
    for (const auto& frame : frames) probe.ingest(frame);
    records += probe.finish().size();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  state.counters["flows"] =
      benchmark::Counter(static_cast<double>(records) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ShardedProbeIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Flow-table pressure: many long-lived concurrent flows (the situation at
// a PoP at prime time). Measures ingest+advance with a full table.
void BM_FlowTableAt50kConcurrentFlows(benchmark::State& state) {
  using ew::core::IPv4Address;
  using ew::core::Timestamp;
  // Pre-build decoded packets covering 50k distinct 5-tuples.
  std::vector<ew::net::Frame> frames;
  frames.reserve(50'000);
  for (std::uint32_t i = 0; i < 50'000; ++i) {
    frames.push_back(ew::net::PacketBuilder{}
                         .ts(Timestamp::from_seconds(static_cast<std::int64_t>(i / 1000)))
                         .ip(IPv4Address{0x0A000000u + (i % 4000)},
                             IPv4Address{0x9D000000u + (i / 4000)})
                         .udp(static_cast<std::uint16_t>(1024 + (i % 60000)), 443)
                         .payload("data")
                         .build());
  }
  std::vector<ew::net::DecodedPacket> packets;
  packets.reserve(frames.size());
  for (const auto& f : frames) packets.push_back(*ew::net::decode_frame(f));

  std::uint64_t exported = 0;
  ew::flow::FlowTableConfig cfg;
  cfg.udp_idle_timeout_us = 3'600'000'000;  // keep everything live
  auto count_sink = [&exported](ew::flow::FlowRecord&&) { ++exported; };
  for (auto _ : state) {
    ew::flow::FlowTable table{cfg, count_sink};
    for (const auto& pkt : packets) {
      table.ingest(pkt);
      table.advance(pkt.timestamp);
    }
    benchmark::DoNotOptimize(table.active_flows());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_FlowTableAt50kConcurrentFlows);

void BM_DecodeOnly(benchmark::State& state) {
  const auto frames = make_traffic_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::net::decode_frame(frames[i++ % frames.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeOnly);

}  // namespace

int main(int argc, char** argv) {
  std::printf("\n================================================================\n");
  std::printf("§2.1 probe pipeline throughput (decode -> flows -> DPI -> export)\n");
  std::printf("Paper context: production probes sustain 10 Gb/s per link on\n");
  std::printf("commodity hardware; items/s and bytes/s below are this software\n");
  std::printf("pipeline without DPDK I/O.\n");
  std::printf("================================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
