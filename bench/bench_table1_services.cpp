// Table 1 — domain-to-service associations. Prints the paper's example
// rows evaluated by our rule engine, then benchmarks classification
// throughput (a probe classifies every flow's hostname online).
#include "bench_common.hpp"
#include "services/catalog.hpp"

namespace ew = edgewatch;

namespace {

void print_reproduction() {
  bench_common::header("Table 1", "domain-to-service associations");
  const auto& catalog = ew::services::ServiceCatalog::standard();
  struct Row {
    const char* domain;
    const char* expected;
  };
  const Row rows[] = {
      {"facebook.com", "Facebook"},
      {"fbcdn.com", "Facebook"},
      {"fbstatic-a.akamaihd.net", "Facebook"},   // the table's RegExp row
      {"netflix.com", "Netflix"},
      {"nflxvideo.net", "Netflix"},
      // Beyond the table: each domain generation of Fig. 11.
      {"r3---sn-uxaxovg-5gie.googlevideo.com", "YouTube"},
      {"redirector.gvt1.com", "YouTube"},
      {"scontent.cdninstagram.com", "Instagram"},
      {"mmx-ds.cdn.whatsapp.net", "WhatsApp"},
      {"www.polito.it", "Other"},
  };
  int correct = 0;
  for (const auto& row : rows) {
    const auto got = ew::services::to_string(catalog.classify_domain(row.domain));
    const bool ok = got == row.expected;
    correct += ok;
    std::printf("  %-42s -> %-12s (expected %-12s) %s\n", row.domain, std::string(got).c_str(),
                row.expected, ok ? "OK" : "MISMATCH");
  }
  std::printf("  %d/%zu associations match the paper's rule base\n", correct,
              std::size(rows));
  std::printf("  rules loaded: %zu suffix, %zu regex\n",
              catalog.rules().suffix_rules(), catalog.rules().regex_rules());
}

void BM_ClassifyDomain(benchmark::State& state) {
  const auto& catalog = ew::services::ServiceCatalog::standard();
  const char* domains[] = {
      "facebook.com",       "r3---sn-uxaxovg.googlevideo.com",
      "unknown.example.it", "fbstatic-a.akamaihd.net",
      "scontent.fbcdn.net", "api-global.netflix.com",
  };
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.classify_domain(domains[i++ % std::size(domains)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyDomain);

void BM_ClassifyRegexWorstCase(benchmark::State& state) {
  // Misses the exact and suffix tables, exercising every regex rule.
  const auto& catalog = ew::services::ServiceCatalog::standard();
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.classify_domain("deep.sub.domain.not-in-rules.example"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyRegexWorstCase);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
