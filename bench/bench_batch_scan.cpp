// Batch execution core harness (run by scripts/bench.sh): the tentpole
// claim of the exec::RecordBatch refactor is that the pipeline's hottest
// scan — the full-day stage-one aggregation over a columnar v3 lake —
// runs >= 1.5x faster when the aggregator consumes SoA batches
// (DayAggregator::add_batch, dict-code pass-through, one classification
// per dictionary entry) than when the same blocks are emitted through the
// row-callback shim one FlowRecord at a time.
//
// Both paths read the *same* v3 day file with the same day-aggregate
// projection; the only variable is the consumption shape. The identity
// gate is unconditional and field-exact — subscribers, per-service
// counters, fp time bins, RTT sample order, domain tallies — because a
// faster scan that aggregates differently is a bug, not a win. The
// speedup gate is armed by --min-speedup (bench.sh passes 1.5 on
// multi-core hosts; the CI smoke run passes a looser floor on shared
// runners).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analytics/parallel.hpp"
#include "core/time.hpp"
#include "exec/record_batch.hpp"
#include "storage/columnar.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

/// Field-exact aggregate identity (fp bins and RTT order included). On the
/// first mismatch, names the field and returns false.
bool aggregates_identical(const ew::analytics::DayAggregate& a,
                          const ew::analytics::DayAggregate& b) {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "FAIL: batch aggregate differs from row aggregate: %s\n", what);
    return false;
  };
  if (a.web_bytes != b.web_bytes) return fail("web_bytes");
  if (a.downlink_bins != b.downlink_bins) return fail("downlink_bins");
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    if (a.rtt_min_ms[s] != b.rtt_min_ms[s]) return fail("rtt_min_ms");
    if (a.health[s].packets != b.health[s].packets ||
        a.health[s].retransmits != b.health[s].retransmits ||
        a.health[s].out_of_order != b.health[s].out_of_order) {
      return fail("health");
    }
  }
  if (a.subscribers.size() != b.subscribers.size()) return fail("subscriber count");
  for (const auto& [ip, sub] : a.subscribers) {
    const auto it = b.subscribers.find(ip);
    if (it == b.subscribers.end()) return fail("subscriber set");
    if (sub.access != it->second.access || sub.flows != it->second.flows ||
        sub.bytes_up != it->second.bytes_up || sub.bytes_down != it->second.bytes_down) {
      return fail("subscriber counters");
    }
    for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
      if (sub.per_service[s].flows != it->second.per_service[s].flows ||
          sub.per_service[s].bytes_up != it->second.per_service[s].bytes_up ||
          sub.per_service[s].bytes_down != it->second.per_service[s].bytes_down) {
        return fail("per-service counters");
      }
    }
  }
  if (a.server_ips.size() != b.server_ips.size()) return fail("server_ip count");
  for (const auto& [ip, stats] : a.server_ips) {
    const auto it = b.server_ips.find(ip);
    if (it == b.server_ips.end() || stats.service_mask != it->second.service_mask ||
        stats.bytes != it->second.bytes) {
      return fail("server_ip stats");
    }
  }
  if (a.domain_bytes != b.domain_bytes) return fail("domain_bytes");
  if (a.unclassified_domain_bytes != b.unclassified_domain_bytes) {
    return fail("unclassified_domain_bytes");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int day_count = argc > 1 ? std::atoi(argv[1]) : 8;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto out_path = argc > 3 ? std::string(argv[3]) : std::string("BENCH_batch_scan.json");
  double min_speedup = 0;  // 0 = report-only (identity gate always armed)
  for (int i = 4; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0) min_speedup = std::atof(argv[i + 1]);
  }

  // One big multi-block v3 "day": several synthetic days merged and
  // time-sorted — the same full-day working set the stage-one pipeline
  // re-scans five years of.
  const auto scenario = ew::synth::build_paper_scenario(/*seed=*/7, /*scale=*/0.2);
  const ew::synth::WorkloadGenerator gen{scenario};
  const ew::core::CivilDate base{2015, 6, 1};
  std::vector<ew::flow::FlowRecord> records;
  for (int d = 0; d < day_count; ++d) {
    const auto z = ew::core::days_from_civil(base) + d;
    auto day_recs = gen.day_records(ew::core::civil_from_days(z));
    records.insert(records.end(), std::make_move_iterator(day_recs.begin()),
                   std::make_move_iterator(day_recs.end()));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const ew::flow::FlowRecord& a, const ew::flow::FlowRecord& b) {
                     return a.first_packet < b.first_packet;
                   });

  const auto dir = fs::temp_directory_path() / "ew_bench_batch_scan";
  fs::remove_all(dir);
  ew::storage::DataLake lake{dir};
  if (!lake.append(base, records)) {
    std::fprintf(stderr, "lake append failed\n");
    return 1;
  }
  const std::size_t blocks = lake.load_day_blocks(base).blocks().size();
  std::printf("batch scan bench: %zu records, %zu v3 blocks, %d repeats\n", records.size(),
              blocks, repeats);

  const ew::storage::ScanPredicate proj =
      ew::storage::ScanPredicate::project(ew::analytics::kDayAggregateScanFields);

  // Row baseline: the pre-batch consumption shape — every record
  // materialized through the batch->row shim, classified, then aggregated.
  ew::analytics::DayAggregate row_agg;
  std::uint64_t row_records = 0;
  const double row_s = best_of(repeats, [&] {
    ew::analytics::DayAggregator agg(base);
    const auto scan = lake.scan_day(base, proj,
                                    [&](const ew::flow::FlowRecord& r) { agg.add(r); });
    row_records = scan.records_delivered;
    row_agg = std::move(agg).take();
  });

  // Batch path: same lake, same projection, SoA consumption with dict-code
  // pass-through (no FlowRecord, no string, one classification per distinct
  // hostname per block).
  ew::analytics::DayAggregate batch_agg;
  std::uint64_t batch_records = 0, batches = 0;
  const double batch_s = best_of(repeats, [&] {
    ew::analytics::DayAggregator agg(base);
    batches = 0;
    const auto scan = lake.scan_day_batches(base, proj, [&](const ew::exec::RecordBatch& b) {
      ++batches;
      agg.add_batch(b);
    });
    batch_records = scan.records_delivered;
    batch_agg = std::move(agg).take();
  });

  const double speedup = batch_s > 0 ? row_s / batch_s : 0;
  const double rows_per_batch = batches > 0 ? double(batch_records) / double(batches) : 0;
  std::printf("  row-emit aggregate:  %8.3f s  (%.2fM rec/s)\n", row_s,
              row_records / row_s / 1e6);
  std::printf("  batch aggregate:     %8.3f s  (%.2fM rec/s, %.2fx vs row, %llu batches, "
              "%.0f rows/batch)\n",
              batch_s, batch_records / batch_s / 1e6, speedup,
              static_cast<unsigned long long>(batches), rows_per_batch);

  // Identity gates, unconditional: same delivery count, same aggregate down
  // to fp bin contents and RTT sample order.
  if (row_records == 0 || row_records != batch_records) {
    std::fprintf(stderr, "FAIL: delivered-record mismatch (row %llu, batch %llu)\n",
                 static_cast<unsigned long long>(row_records),
                 static_cast<unsigned long long>(batch_records));
    return 1;
  }
  if (!aggregates_identical(row_agg, batch_agg)) return 1;
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: batch path %.2fx vs row (need >= %.2fx)\n", speedup,
                 min_speedup);
    return 1;
  }

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"batch_scan\",\n"
                "  \"records\": %zu,\n"
                "  \"blocks\": %zu,\n"
                "  \"repeats\": %d,\n"
                "  \"row_aggregate_s\": %.6f,\n"
                "  \"batch_aggregate_s\": %.6f,\n"
                "  \"batch_speedup_vs_row\": %.2f,\n"
                "  \"batches\": %llu,\n"
                "  \"rows_per_batch\": %.1f,\n"
                "  \"min_speedup_gate\": %.2f\n"
                "}\n",
                records.size(), blocks, repeats, row_s, batch_s, speedup,
                static_cast<unsigned long long>(batches), rows_per_batch, min_speedup);
  bool wrote = false;
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(buf, f);
    std::fclose(f);
    wrote = true;
    std::printf("wrote %s\n", out_path.c_str());
  }
  fs::remove_all(dir);
  return wrote ? 0 : 1;
}
