// Ablation — longest-prefix matching for the Fig. 11 ASN analysis. The
// binary trie vs a linear RIB scan at growing table sizes: the trie keeps
// O(32) per lookup while the scan degrades linearly, which is why mapping
// tens of thousands of server IPs per day against a full RIB needs it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "asn/lpm.hpp"
#include "core/rng.hpp"

namespace ew = edgewatch;

namespace {

ew::asn::Rib make_rib(std::size_t routes, std::uint64_t seed = 99) {
  ew::core::Xoshiro256 rng{seed};
  ew::asn::Rib rib;
  for (std::size_t i = 0; i < routes; ++i) {
    const auto addr = static_cast<std::uint32_t>(rng());
    const auto len = static_cast<std::uint8_t>(8 + ew::core::uniform_below(rng, 17));  // 8..24
    rib.add_route(ew::core::IPv4Prefix{ew::core::IPv4Address{addr}, len},
                  static_cast<std::uint32_t>(ew::core::uniform_below(rng, 70000)));
  }
  return rib;
}

void BM_TrieLookup(benchmark::State& state) {
  const auto rib = make_rib(static_cast<std::size_t>(state.range(0)));
  ew::core::Xoshiro256 rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rib.origin_asn(ew::core::IPv4Address{static_cast<std::uint32_t>(rng())}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LinearLookup(benchmark::State& state) {
  const auto rib = make_rib(static_cast<std::size_t>(state.range(0)));
  ew::core::Xoshiro256 rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rib.origin_asn_linear(ew::core::IPv4Address{static_cast<std::uint32_t>(rng())}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TrieBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_rib(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TrieBuild)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  std::printf("\n================================================================\n");
  std::printf("Ablation: trie vs linear-scan LPM (Fig. 11 ASN mapping substrate)\n");
  std::printf("================================================================\n");
  const auto rib = make_rib(10000);
  std::printf("  10k-route RIB: %zu trie nodes, agreement spot-check: ", rib.route_count());
  ew::core::Xoshiro256 rng{1};
  int agree = 0;
  for (int i = 0; i < 1000; ++i) {
    const ew::core::IPv4Address a{static_cast<std::uint32_t>(rng())};
    agree += rib.origin_asn(a) == rib.origin_asn_linear(a);
  }
  std::printf("%d/1000\n", agree);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
