// Fig. 11 — infrastructure evolution of Facebook, Instagram and YouTube:
// per-day server-IP counts (dedicated vs shared), per-ASN breakdowns
// against the monthly RIB, and second-level-domain traffic shares.
// Paper: FB/IG migrate from shared third-party CDNs (Akamai) to the
// private Facebook CDN by end-2015, shrinking daily IPs (3800→1000 FB,
// →300 IG) and dedicating them; YouTube always dedicated, fleet keeps
// growing (~40k IPs), ISP-hosted caches take most traffic from end-2015;
// domains youtube.com → googlevideo.com (2014) → +gvt1.com (2015),
// fbcdn/akamaihd → facebook.com, cdninstagram.
#include "analytics/infrastructure.hpp"
#include "bench_common.hpp"

namespace ew = edgewatch;
using ew::services::ServiceId;

namespace {

const std::vector<ew::analytics::DayAggregate>& window() {
  static const auto days = [] {
    std::vector<ew::analytics::DayAggregate> out;
    for (ew::core::MonthIndex m{2013, 6}; m <= ew::core::MonthIndex{2017, 6}; m = m + 6) {
      for (const auto d : bench_common::sample_days(m, 2)) {
        out.push_back(bench_common::generator().day_aggregate(d));
      }
    }
    return out;
  }();
  return days;
}

ew::analytics::RibProvider rib_provider() {
  return [](ew::core::MonthIndex m) -> const ew::asn::Rib& {
    return bench_common::generator().rib(m);
  };
}

void print_service(ServiceId id) {
  std::printf("  --- %s ---\n", std::string(ew::services::to_string(id)).c_str());
  const auto lifecycle = ew::analytics::ip_lifecycle(window(), id);
  std::printf("    date         dedicated  shared  cumulative\n");
  for (const auto& row : lifecycle) {
    if (row.date.day != 10) continue;  // one row per sampled month
    std::printf("    %s   %7zu  %6zu  %9zu\n", row.date.to_string().c_str(), row.dedicated,
                row.shared, row.cumulative_unique);
  }
  const auto& dir = ew::asn::AsnDirectory::standard();
  const auto asns = ew::analytics::asn_breakdown(window(), id, rib_provider());
  std::printf("    ASN breakdown (avg daily IPs):\n");
  for (const auto& row : asns) {
    std::printf("      %s:", row.month.to_string().c_str());
    for (const auto& [asn_num, ips] : row.ips_by_asn) {
      std::printf("  %s=%.0f", std::string(dir.name(asn_num)).c_str(), ips);
    }
    std::printf("\n");
  }
  const auto domains = ew::analytics::domain_shares(window(), id);
  std::printf("    domain shares (%%):\n");
  for (const auto& row : domains) {
    std::printf("      %s:", row.month.to_string().c_str());
    for (const auto& [domain, pct] : row.share_pct) {
      if (pct >= 1.0) std::printf("  %s=%.0f", domain.c_str(), pct);
    }
    std::printf("\n");
  }
}

double asn_ips(const std::vector<ew::analytics::AsnBreakdownRow>& rows,
               ew::core::MonthIndex month, std::uint32_t asn) {
  for (const auto& row : rows) {
    if (row.month == month) {
      const auto it = row.ips_by_asn.find(asn);
      return it == row.ips_by_asn.end() ? 0.0 : it->second;
    }
  }
  return 0.0;
}

void print_reproduction() {
  bench_common::header("Figure 11", "Facebook / Instagram / YouTube infrastructure evolution");
  print_service(ServiceId::kFacebook);
  print_service(ServiceId::kInstagram);
  print_service(ServiceId::kYouTube);

  const auto fb = ew::analytics::asn_breakdown(window(), ServiceId::kFacebook, rib_provider());
  const auto ig = ew::analytics::asn_breakdown(window(), ServiceId::kInstagram, rib_provider());
  const auto yt = ew::analytics::asn_breakdown(window(), ServiceId::kYouTube, rib_provider());
  using Dir = ew::asn::AsnDirectory;

  bench_common::compare("FB Akamai IPs mid-2013 (scaled 1/10)", "large",
                        asn_ips(fb, {2013, 6}, Dir::kAkamai));
  bench_common::compare("FB Akamai IPs mid-2017 (migration done)", "~0",
                        asn_ips(fb, {2017, 6}, Dir::kAkamai));
  bench_common::compare("FB AS32934 IPs mid-2017 (scaled ~100)", "~100",
                        asn_ips(fb, {2017, 6}, Dir::kFacebook));
  bench_common::compare("IG dedicated IPs mid-2017 (scaled ~30)", "~30",
                        asn_ips(ig, {2017, 6}, Dir::kFacebook));
  bench_common::compare("YT ISP-hosted cache IPs mid-2017", ">0 (in-PoP)",
                        asn_ips(yt, {2017, 6}, Dir::kIsp));
  bench_common::compare("YT ISP cache IPs mid-2014", "0", asn_ips(yt, {2014, 6}, Dir::kIsp));

  const auto fb_life = ew::analytics::ip_lifecycle(window(), ServiceId::kFacebook);
  bench_common::compare("FB shared IPs on last sampled day", "few",
                        static_cast<double>(fb_life.back().shared));
  const auto yt_life = ew::analytics::ip_lifecycle(window(), ServiceId::kYouTube);
  bench_common::compare("YT shared IPs on last sampled day (always dedicated)", "0",
                        static_cast<double>(yt_life.back().shared));
  bench_common::compare("YT cumulative unique IPs (keeps growing)", "tens of thousands",
                        static_cast<double>(yt_life.back().cumulative_unique));
}

void BM_IpLifecycle(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ew::analytics::ip_lifecycle(window(), ServiceId::kYouTube));
  }
}
BENCHMARK(BM_IpLifecycle);

void BM_AsnBreakdown(benchmark::State& state) {
  const auto provider = rib_provider();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ew::analytics::asn_breakdown(window(), ServiceId::kFacebook, provider));
  }
}
BENCHMARK(BM_AsnBreakdown);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
