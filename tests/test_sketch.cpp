// Sketch primitives behind the rollup store: HyperLogLog distinct counts
// and the DDSketch-style quantile sketch. The tests hold the *documented*
// contracts — |est - true| <= 3*1.04/sqrt(m) * true for HLL, relative
// value error <= alpha for quantiles — plus exact merge semantics and
// serialization roundtrips, because query answers are only as trustworthy
// as these bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/bytes.hpp"
#include "core/sketch.hpp"

namespace ew = edgewatch;
using ew::core::ByteReader;
using ew::core::ByteWriter;
using ew::core::HyperLogLog;
using ew::core::QuantileSketch;

namespace {

/// Exact nearest-rank quantile: the k-th smallest, k = max(1, ceil(q*n)).
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto k = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(q * n)));
  return values[k - 1];
}

std::vector<std::byte> serialize(const auto& sketch) {
  ByteWriter w;
  sketch.serialize(w);
  return std::move(w).take();
}

}  // namespace

// ------------------------------------------------------------ HyperLogLog

TEST(HyperLogLog, EmptyEstimatesZero) {
  HyperLogLog hll;
  EXPECT_TRUE(hll.empty());
  EXPECT_DOUBLE_EQ(hll.estimate(), 0.0);
  EXPECT_EQ(hll.register_count(), 4096u);
}

TEST(HyperLogLog, SmallCardinalitiesAreNearExact) {
  // Linear-counting regime: tiny sets (a service's distinct subscribers on
  // a quiet day) must come back essentially exact.
  for (const std::uint64_t n : {1u, 10u, 100u, 1000u}) {
    HyperLogLog hll;
    for (std::uint64_t i = 0; i < n; ++i) hll.add(i * 2654435761u + 12345);
    EXPECT_NEAR(hll.estimate(), static_cast<double>(n), std::max(1.0, 0.02 * n)) << "n=" << n;
  }
}

TEST(HyperLogLog, LargeCardinalityWithinDocumentedBound) {
  HyperLogLog hll;
  constexpr std::uint64_t kN = 200'000;
  for (std::uint64_t i = 0; i < kN; ++i) hll.add(i);
  const double err = std::abs(hll.estimate() - kN) / kN;
  EXPECT_LE(err, hll.error_bound());  // 3 * 1.04/sqrt(4096) ~ 4.9%
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 500; ++i) hll.add(i);
  }
  EXPECT_NEAR(hll.estimate(), 500.0, 0.02 * 500);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a, b, whole;
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    (i % 2 == 0 ? a : b).add(i);
    whole.add(i);
  }
  for (std::uint64_t i = 0; i < 5'000; ++i) {  // overlap: both halves saw these
    a.add(i);
    b.add(i);
  }
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a, whole);  // register-wise max IS the union sketch, bit for bit
}

TEST(HyperLogLog, MergeRejectsPrecisionMismatch) {
  HyperLogLog a{12}, b{10};
  b.add(1);
  const HyperLogLog before = a;
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a, before);
}

TEST(HyperLogLog, DeterministicAcrossInstances) {
  HyperLogLog a, b;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a.estimate(), b.estimate());
}

TEST(HyperLogLog, SerializeRoundtrip) {
  HyperLogLog hll{12};
  for (std::uint64_t i = 0; i < 10'000; ++i) hll.add(i);
  const auto bytes = serialize(hll);
  ByteReader r{bytes};
  const auto back = HyperLogLog::deserialize(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, hll);
  EXPECT_EQ(r.remaining(), 0u);

  // An empty sketch costs a few bytes, not 4 KiB of registers.
  EXPECT_LT(serialize(HyperLogLog{}).size(), 8u);
}

TEST(HyperLogLog, DeserializeRejectsDamage) {
  HyperLogLog hll;
  for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
  const auto bytes = serialize(hll);

  {  // truncated
    ByteReader r{std::span{bytes}.first(bytes.size() / 2)};
    EXPECT_FALSE(HyperLogLog::deserialize(r).has_value());
  }
  {  // bad precision byte
    auto bad = bytes;
    bad[0] = std::byte{99};
    ByteReader r{bad};
    EXPECT_FALSE(HyperLogLog::deserialize(r).has_value());
  }
}

// --------------------------------------------------------- QuantileSketch

TEST(QuantileSketch, EmptyAndZeroHandling) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  s.add(0.0);
  s.add(-5.0);  // clamped to the zero bucket
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(QuantileSketch, QuantilesWithinRelativeAccuracy) {
  // Log-normal-ish RTT samples spanning 3 decades — the shape Fig. 10 sees.
  std::mt19937 rng(42);
  std::lognormal_distribution<double> dist(3.0, 1.2);
  QuantileSketch sketch;
  std::vector<double> values;
  for (int i = 0; i < 50'000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    sketch.add(v);
  }
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double est = sketch.quantile(q);
    EXPECT_LE(std::abs(est - exact), sketch.relative_accuracy() * exact) << "q=" << q;
  }
}

TEST(QuantileSketch, ExactMoments) {
  QuantileSketch s;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    s.add(i);
    sum += i;
  }
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.sum(), sum);       // sums are exact, not sketched
  EXPECT_DOUBLE_EQ(s.mean(), sum / 1000);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
}

TEST(QuantileSketch, MergeEqualsConcatenatedStream) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 5000.0);
  QuantileSketch a, b, whole;
  for (int i = 0; i < 20'000; ++i) {
    const double v = dist(rng);
    (i % 3 == 0 ? a : b).add(v);
    whole.add(v);
  }
  ASSERT_TRUE(a.merge(b));
  // Bucket counts add exactly, so every quantile answer is bit-identical to
  // the concatenated stream's; the running sum is a double and only matches
  // to summation order.
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_NEAR(a.sum(), whole.sum(), 1e-9 * whole.sum());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeRejectsAccuracyMismatch) {
  QuantileSketch a{0.01}, b{0.05};
  b.add(1.0);
  EXPECT_FALSE(a.merge(b));
  EXPECT_TRUE(a.empty());
}

TEST(QuantileSketch, WeightedAddMatchesRepeatedAdd) {
  QuantileSketch weighted, repeated;
  weighted.add(42.0, 1000);
  for (int i = 0; i < 1000; ++i) repeated.add(42.0);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_DOUBLE_EQ(weighted.quantile(0.5), repeated.quantile(0.5));
}

TEST(QuantileSketch, CdfIsMonotoneAndConsistent) {
  QuantileSketch s;
  for (int i = 1; i <= 10'000; ++i) s.add(i);
  double prev = 0;
  for (double x = 1; x <= 10'000; x *= 2) {
    const double c = s.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_NEAR(c, x / 10'000, 0.02);  // uniform data: CDF ~ x/n
    prev = c;
  }
  EXPECT_DOUBLE_EQ(s.cdf(20'000), 1.0);
}

TEST(QuantileSketch, SerializeRoundtrip) {
  std::mt19937 rng(3);
  std::lognormal_distribution<double> dist(1.0, 2.0);
  QuantileSketch s{0.02};
  s.add(0.0, 5);  // exercise the zero bucket
  for (int i = 0; i < 5'000; ++i) s.add(dist(rng));
  const auto bytes = serialize(s);
  ByteReader r{bytes};
  const auto back = QuantileSketch::deserialize(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(QuantileSketch, DeserializeRejectsDamage) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  const auto bytes = serialize(s);
  {  // truncated mid-bucket-list
    ByteReader r{std::span{bytes}.first(bytes.size() - 3)};
    EXPECT_FALSE(QuantileSketch::deserialize(r).has_value());
  }
  {  // absurd alpha
    auto bad = bytes;
    bad[7] = std::byte{0xff};  // high byte of the little-endian alpha double
    ByteReader r{bad};
    EXPECT_FALSE(QuantileSketch::deserialize(r).has_value());
  }
}
