// LPM trie correctness (incl. property test vs linear scan) and RIB/ASN
// directory behaviour.
#include <gtest/gtest.h>

#include "asn/lpm.hpp"
#include "core/rng.hpp"

namespace ew = edgewatch;
using ew::asn::AsnDirectory;
using ew::asn::PrefixTrie;
using ew::asn::Rib;
using ew::core::IPv4Address;
using ew::core::IPv4Prefix;

namespace {
IPv4Prefix pfx(const char* s) {
  auto p = IPv4Prefix::parse(s);
  EXPECT_TRUE(p.has_value()) << s;
  return *p;
}
}  // namespace

TEST(PrefixTrie, LongestMatchWins) {
  PrefixTrie trie;
  trie.insert(pfx("157.240.0.0/16"), 32934);
  trie.insert(pfx("157.240.20.0/24"), 99999);
  EXPECT_EQ(trie.lookup(IPv4Address{157, 240, 20, 5}), 99999u);
  EXPECT_EQ(trie.lookup(IPv4Address{157, 240, 21, 5}), 32934u);
  EXPECT_FALSE(trie.lookup(IPv4Address{8, 8, 8, 8}).has_value());
}

TEST(PrefixTrie, DefaultRouteCoversEverything) {
  PrefixTrie trie;
  trie.insert(pfx("0.0.0.0/0"), 1);
  trie.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.lookup(IPv4Address{8, 8, 8, 8}), 1u);
  EXPECT_EQ(trie.lookup(IPv4Address{10, 1, 1, 1}), 2u);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie trie;
  trie.insert(pfx("1.2.3.4/32"), 7);
  EXPECT_EQ(trie.lookup(IPv4Address{1, 2, 3, 4}), 7u);
  EXPECT_FALSE(trie.lookup(IPv4Address{1, 2, 3, 5}).has_value());
}

TEST(PrefixTrie, OverwriteKeepsPrefixCount) {
  PrefixTrie trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.prefix_count(), 1u);
  EXPECT_EQ(trie.lookup(IPv4Address{10, 0, 0, 1}), 2u);
}

// Property: the trie agrees with brute-force linear scan on random RIBs.
TEST(PrefixTrie, AgreesWithLinearScanOnRandomRibs) {
  ew::core::Xoshiro256 rng{4242};
  for (int trial = 0; trial < 5; ++trial) {
    Rib rib;
    const int n_routes = 300;
    for (int i = 0; i < n_routes; ++i) {
      const auto addr = static_cast<std::uint32_t>(rng());
      const auto len = static_cast<std::uint8_t>(8 + ew::core::uniform_below(rng, 25));  // 8..32
      rib.add_route(IPv4Prefix{IPv4Address{addr}, len},
                    static_cast<std::uint32_t>(ew::core::uniform_below(rng, 70000)));
    }
    for (int q = 0; q < 2000; ++q) {
      // Half the queries are random; half target near a route base so
      // matches actually occur.
      IPv4Address addr{static_cast<std::uint32_t>(rng())};
      if (q % 2 == 0) {
        const auto& route = rib.routes()[ew::core::uniform_below(rng, rib.routes().size())];
        addr = IPv4Address{route.first.base().value() |
                           (static_cast<std::uint32_t>(rng()) &
                            static_cast<std::uint32_t>(route.first.size() - 1))};
      }
      EXPECT_EQ(rib.origin_asn(addr), rib.origin_asn_linear(addr)) << addr.to_string();
    }
  }
}

TEST(Rib, RouteCountTracksInsertions) {
  Rib rib;
  rib.add_route(pfx("31.13.64.0/18"), AsnDirectory::kFacebook);
  rib.add_route(pfx("173.194.0.0/16"), AsnDirectory::kGoogle);
  EXPECT_EQ(rib.route_count(), 2u);
  EXPECT_EQ(rib.origin_asn(IPv4Address{31, 13, 86, 36}), AsnDirectory::kFacebook);
  EXPECT_EQ(rib.origin_asn(IPv4Address{173, 194, 1, 1}), AsnDirectory::kGoogle);
}

TEST(AsnDirectory, StandardNamesMatchPaperFigures) {
  const auto& dir = AsnDirectory::standard();
  EXPECT_EQ(dir.name(AsnDirectory::kFacebook), "FACEBOOK");
  EXPECT_EQ(dir.name(AsnDirectory::kGoogle), "GOOGLE");
  EXPECT_EQ(dir.name(AsnDirectory::kAkamai), "AKAMAI");
  EXPECT_EQ(dir.name(AsnDirectory::kTelia), "TELIANET");
  EXPECT_EQ(dir.name(AsnDirectory::kGtt), "GTT");
  EXPECT_EQ(dir.name(AsnDirectory::kIsp), "ISP");
  EXPECT_EQ(dir.name(12345), "OTHER");
}

TEST(AsnDirectory, SetOverridesName) {
  AsnDirectory dir;
  dir.set(65000, "TESTNET");
  EXPECT_EQ(dir.name(65000), "TESTNET");
}
