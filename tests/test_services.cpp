// Regex engine, rule engine, and the service catalog (Table 1 behaviour).
#include <gtest/gtest.h>

#include <regex>

#include "core/rng.hpp"
#include "services/catalog.hpp"
#include "services/regex.hpp"
#include "services/rules.hpp"

namespace ew = edgewatch;
using ew::services::Regex;
using ew::services::RuleEngine;
using ew::services::ServiceCatalog;
using ew::services::ServiceId;

// ------------------------------------------------------------------ regex

TEST(Regex, LiteralSearchAndFullMatch) {
  const auto re = Regex::compile("cdn");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("fbcdn.net"));
  EXPECT_FALSE(re->search("facebook.com"));
  EXPECT_TRUE(re->full_match("cdn"));
  EXPECT_FALSE(re->full_match("fbcdn"));
}

TEST(Regex, AnchorsBindToEnds) {
  const auto re = Regex::compile("^video\\.google\\.com$");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("video.google.com"));
  EXPECT_FALSE(re->search("video.google.com.evil.org"));
  EXPECT_FALSE(re->search("x.video.google.com"));
}

TEST(Regex, Table1FacebookPattern) {
  // The literal pattern printed in Table 1 (unescaped dot matches '.').
  const auto re = Regex::compile("^fbstatic-[a-z].akamaihd.net$");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("fbstatic-a.akamaihd.net"));
  EXPECT_TRUE(re->search("fbstatic-z.akamaihd.net"));
  EXPECT_FALSE(re->search("fbstatic-1.akamaihd.net"));
  EXPECT_FALSE(re->search("fbstatic-ab.akamaihd.net"));
  EXPECT_FALSE(re->search("fbstatic-a.akamaihd.net.other.com"));
}

TEST(Regex, ClassesRangesAndNegation) {
  const auto digits = Regex::compile("^[0-9]+$");
  ASSERT_TRUE(digits.has_value());
  EXPECT_TRUE(digits->search("0123456789"));
  EXPECT_FALSE(digits->search("12a"));
  EXPECT_FALSE(digits->search(""));

  const auto nodigit = Regex::compile("^[^0-9]+$");
  ASSERT_TRUE(nodigit.has_value());
  EXPECT_TRUE(nodigit->search("abc-def"));
  EXPECT_FALSE(nodigit->search("ab3"));
}

TEST(Regex, QuantifiersGreedyWithBacktracking) {
  const auto re = Regex::compile("^a*ab$");  // needs backtracking
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("aaab"));
  EXPECT_TRUE(re->search("ab"));
  EXPECT_FALSE(re->search("b"));

  const auto plus = Regex::compile("^x+y?z$");
  ASSERT_TRUE(plus.has_value());
  EXPECT_TRUE(plus->search("xz"));
  EXPECT_TRUE(plus->search("xxxyz"));
  EXPECT_FALSE(plus->search("z"));
  EXPECT_FALSE(plus->search("xyyz"));
}

TEST(Regex, AlternationAndGroups) {
  const auto re = Regex::compile("^(www|m|mobile)\\.facebook\\.com$");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("www.facebook.com"));
  EXPECT_TRUE(re->search("m.facebook.com"));
  EXPECT_TRUE(re->search("mobile.facebook.com"));
  EXPECT_FALSE(re->search("api.facebook.com"));

  const auto grouped = Regex::compile("^a(bc)+d$");
  ASSERT_TRUE(grouped.has_value());
  EXPECT_TRUE(grouped->search("abcd"));
  EXPECT_TRUE(grouped->search("abcbcd"));
  EXPECT_FALSE(grouped->search("ad"));
}

TEST(Regex, DotMatchesAnySingleChar) {
  const auto re = Regex::compile("^a.c$");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("abc"));
  EXPECT_TRUE(re->search("a.c"));
  EXPECT_FALSE(re->search("ac"));
  EXPECT_FALSE(re->search("abbc"));
}

TEST(Regex, EscapedMetacharacters) {
  const auto re = Regex::compile("^a\\.b\\*$");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("a.b*"));
  EXPECT_FALSE(re->search("axb*"));
}

TEST(Regex, RejectsMalformedPatterns) {
  EXPECT_FALSE(Regex::compile("(").has_value());
  EXPECT_FALSE(Regex::compile(")").has_value());
  EXPECT_FALSE(Regex::compile("[a-").has_value());
  EXPECT_FALSE(Regex::compile("*a").has_value());
  EXPECT_FALSE(Regex::compile("a**").has_value());
  EXPECT_FALSE(Regex::compile("[z-a]").has_value());
  EXPECT_FALSE(Regex::compile("a\\").has_value());
  EXPECT_FALSE(Regex::compile("^*").has_value());
}

TEST(Regex, ZeroWidthStarDoesNotLoop) {
  const auto re = Regex::compile("^(a?)*b$");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("aaab"));
  EXPECT_TRUE(re->search("b"));
  EXPECT_FALSE(re->search("c"));
}

TEST(Regex, EmptyPatternMatchesEverything) {
  const auto re = Regex::compile("");
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->search("anything"));
  EXPECT_TRUE(re->full_match(""));
  EXPECT_FALSE(re->full_match("x"));
}

// Property: on randomly generated patterns from our supported grammar and
// random inputs, our engine agrees with std::regex (ECMAScript), which
// implements a superset of the same semantics.
TEST(Regex, AgreesWithStdRegexOnRandomPatterns) {
  ew::core::Xoshiro256 rng{20180604};
  const std::string_view alphabet = "abc.";

  auto random_atom = [&](auto&& self, int depth) -> std::string {
    const auto pick = ew::core::uniform_below(rng, depth > 2 ? 4u : 5u);
    switch (pick) {
      case 0:
        return std::string(1, 'a' + static_cast<char>(ew::core::uniform_below(rng, 3)));
      case 1:
        return ".";
      case 2: {  // class
        const char lo = 'a' + static_cast<char>(ew::core::uniform_below(rng, 2));
        const char hi = static_cast<char>(lo + 1 + ew::core::uniform_below(rng, 2));
        std::string out = "[";
        if (ew::core::chance(rng, 0.3)) out += "^";
        out += lo;
        out += '-';
        out += hi;
        out += ']';
        return out;
      }
      case 3:
        return "\\.";
      default: {  // group with alternation
        std::string out = "(";
        const auto alts = 1 + ew::core::uniform_below(rng, 2);
        for (std::uint64_t i = 0; i <= alts; ++i) {
          if (i > 0) out += '|';
          const auto len = 1 + ew::core::uniform_below(rng, 2);
          for (std::uint64_t j = 0; j < len; ++j) out += self(self, depth + 1);
        }
        out += ')';
        return out;
      }
    }
  };

  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string pattern;
    if (ew::core::chance(rng, 0.5)) pattern += '^';
    const auto atoms = 1 + ew::core::uniform_below(rng, 4);
    for (std::uint64_t i = 0; i < atoms; ++i) {
      pattern += random_atom(random_atom, 0);
      const auto q = ew::core::uniform_below(rng, 6);
      if (q == 0) pattern += '*';
      if (q == 1) pattern += '+';
      if (q == 2) pattern += '?';
    }
    if (ew::core::chance(rng, 0.5)) pattern += '$';

    const auto mine = Regex::compile(pattern);
    ASSERT_TRUE(mine.has_value()) << pattern;
    std::regex reference;
    try {
      reference.assign(pattern, std::regex::ECMAScript);
    } catch (const std::regex_error&) {
      continue;  // pattern our grammar allows but ECMAScript rejects (none known)
    }
    for (int input = 0; input < 30; ++input) {
      std::string text;
      const auto len = ew::core::uniform_below(rng, 8);
      for (std::uint64_t i = 0; i < len; ++i) {
        text += alphabet[ew::core::uniform_below(rng, alphabet.size())];
      }
      EXPECT_EQ(mine->search(text), std::regex_search(text, reference))
          << "pattern=" << pattern << " text=" << text;
      ++checked;
    }
  }
  EXPECT_GT(checked, 5000);
}

// ------------------------------------------------------------ rule engine

TEST(RuleEngine, PrecedenceExactOverSuffixOverRegex) {
  RuleEngine engine;
  engine.add_suffix("akamaihd.net", "Akamai");
  ASSERT_TRUE(engine.add_regex("^fbstatic-[a-z]\\.akamaihd\\.net$", "Facebook"));
  engine.add_exact("fbstatic-a.akamaihd.net", "FacebookExact");

  // Exact wins.
  auto got = engine.classify("fbstatic-a.akamaihd.net");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "FacebookExact");
  // Suffix beats regex for other subdomains.
  got = engine.classify("fbstatic-b.akamaihd.net");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "Akamai");
}

TEST(RuleEngine, LongestSuffixWins) {
  RuleEngine engine;
  engine.add_suffix("akamaihd.net", "Akamai");
  engine.add_suffix("video.akamaihd.net", "VideoCdn");
  auto got = engine.classify("edge1.video.akamaihd.net");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "VideoCdn");
  got = engine.classify("other.akamaihd.net");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "Akamai");
}

TEST(RuleEngine, SuffixMatchesApexAndSubdomains) {
  RuleEngine engine;
  engine.add_suffix("netflix.com", "Netflix");
  EXPECT_TRUE(engine.classify("netflix.com").has_value());
  EXPECT_TRUE(engine.classify("www.netflix.com").has_value());
  EXPECT_TRUE(engine.classify("api-global.netflix.com").has_value());
  // "notnetflix.com" must NOT match: suffixes align at label boundaries.
  EXPECT_FALSE(engine.classify("notnetflix.com").has_value());
}

TEST(RuleEngine, CaseAndTrailingDotNormalized) {
  RuleEngine engine;
  engine.add_suffix("Facebook.COM", "Facebook");
  auto got = engine.classify("WWW.FACEBOOK.COM.");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "Facebook");
}

TEST(RuleEngine, RejectsBadRegexRules) {
  RuleEngine engine;
  EXPECT_FALSE(engine.add_regex("(((", "Broken"));
  EXPECT_EQ(engine.regex_rules(), 0u);
}

TEST(RuleEngine, EmptyAndUnknownDomains) {
  RuleEngine engine;
  engine.add_suffix("x.com", "X");
  EXPECT_FALSE(engine.classify("").has_value());
  EXPECT_FALSE(engine.classify("unknown.example").has_value());
}

// --------------------------------------------------------------- catalog

TEST(Catalog, Table1Examples) {
  const auto& cat = ServiceCatalog::standard();
  EXPECT_EQ(cat.classify_domain("facebook.com"), ServiceId::kFacebook);
  EXPECT_EQ(cat.classify_domain("scontent.fbcdn.com"), ServiceId::kFacebook);
  EXPECT_EQ(cat.classify_domain("fbstatic-a.akamaihd.net"), ServiceId::kFacebook);
  EXPECT_EQ(cat.classify_domain("netflix.com"), ServiceId::kNetflix);
  EXPECT_EQ(cat.classify_domain("ipv4-c001-mxp001.nflxvideo.net"), ServiceId::kNetflix);
}

TEST(Catalog, YouTubeDomainGenerations) {
  const auto& cat = ServiceCatalog::standard();
  // Fig. 11i: the three domain generations all classify as YouTube.
  EXPECT_EQ(cat.classify_domain("www.youtube.com"), ServiceId::kYouTube);
  EXPECT_EQ(cat.classify_domain("r3---sn-uxaxovg-5gie.googlevideo.com"), ServiceId::kYouTube);
  EXPECT_EQ(cat.classify_domain("redirector.gvt1.com"), ServiceId::kYouTube);
  // And plain Google search stays Google.
  EXPECT_EQ(cat.classify_domain("www.google.com"), ServiceId::kGoogle);
  EXPECT_EQ(cat.classify_domain("www.google.it"), ServiceId::kGoogle);
}

TEST(Catalog, MessagingAndSocialDomains) {
  const auto& cat = ServiceCatalog::standard();
  EXPECT_EQ(cat.classify_domain("mmx-ds.cdn.whatsapp.net"), ServiceId::kWhatsApp);
  EXPECT_EQ(cat.classify_domain("scontent.cdninstagram.com"), ServiceId::kInstagram);
  EXPECT_EQ(cat.classify_domain("instagram-p13-shv-01.akamaihd.net"), ServiceId::kInstagram);
  EXPECT_EQ(cat.classify_domain("app.snapchat.com"), ServiceId::kSnapChat);
  EXPECT_EQ(cat.classify_domain("web.telegram.org"), ServiceId::kTelegram);
  EXPECT_EQ(cat.classify_domain("duckduckgo.com"), ServiceId::kDuckDuckGo);
}

TEST(Catalog, UnknownDomainIsOther) {
  const auto& cat = ServiceCatalog::standard();
  EXPECT_EQ(cat.classify_domain("polito.it"), ServiceId::kOther);
  EXPECT_EQ(cat.classify_domain(""), ServiceId::kOther);
}

TEST(Catalog, FlowClassificationP2pBeatsDomains) {
  const auto& cat = ServiceCatalog::standard();
  EXPECT_EQ(cat.classify_flow(ew::dpi::L7Protocol::kBittorrent, ""), ServiceId::kPeerToPeer);
  EXPECT_EQ(cat.classify_flow(ew::dpi::L7Protocol::kDht, "tracker.example"),
            ServiceId::kPeerToPeer);
  EXPECT_EQ(cat.classify_flow(ew::dpi::L7Protocol::kTls, "www.netflix.com"), ServiceId::kNetflix);
  EXPECT_EQ(cat.classify_flow(ew::dpi::L7Protocol::kTls, ""), ServiceId::kOther);
}

TEST(Catalog, InfoAndByNameAreConsistent) {
  const auto& cat = ServiceCatalog::standard();
  for (std::size_t i = 0; i < ew::services::kServiceCount; ++i) {
    const auto id = static_cast<ServiceId>(i);
    const auto& info = cat.info(id);
    EXPECT_EQ(info.id, id);
    const auto back = cat.by_name(info.name);
    ASSERT_TRUE(back.has_value()) << info.name;
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(cat.by_name("NoSuchService").has_value());
}

TEST(Catalog, ThresholdsAreSaneForVideoVsSearch) {
  const auto& cat = ServiceCatalog::standard();
  EXPECT_GT(cat.info(ServiceId::kNetflix).activity_threshold_bytes,
            cat.info(ServiceId::kGoogle).activity_threshold_bytes);
  EXPECT_GT(cat.info(ServiceId::kFacebook).activity_threshold_bytes, 0u);
}
