// Codec round-trips, compressor properties, and data-lake behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/hash.hpp"
#include "core/rng.hpp"
#include "storage/codec.hpp"
#include "storage/columnar.hpp"
#include "storage/compress.hpp"
#include "storage/daily_writer.hpp"
#include "storage/datalake.hpp"
#include "storage/fault_injection.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;
using ew::core::ByteReader;
using ew::core::ByteWriter;
using ew::core::CivilDate;
using ew::core::IPv4Address;
using ew::flow::FlowRecord;

namespace {

FlowRecord sample_record(std::uint64_t seed) {
  ew::core::Xoshiro256 rng{seed};
  FlowRecord r;
  r.client_ip = IPv4Address{static_cast<std::uint32_t>(rng())};
  r.server_ip = IPv4Address{static_cast<std::uint32_t>(rng())};
  r.client_port = static_cast<std::uint16_t>(rng());
  r.server_port = 443;
  r.proto = ew::core::TransportProto::kTcp;
  r.access = (rng() & 1) ? ew::flow::AccessTech::kFtth : ew::flow::AccessTech::kAdsl;
  r.first_packet = ew::core::Timestamp::from_date_time({2016, 5, 4}, 12, 30);
  r.last_packet = r.first_packet + static_cast<std::int64_t>(ew::core::uniform_below(rng, 1e9));
  r.up.packets = ew::core::uniform_below(rng, 10000);
  r.up.bytes = ew::core::uniform_below(rng, 100'000'000);
  r.up.bytes_with_hdr = r.up.bytes + 40 * r.up.packets;
  r.down.packets = ew::core::uniform_below(rng, 10000);
  r.down.bytes = ew::core::uniform_below(rng, 1'000'000'000);
  r.down.bytes_with_hdr = r.down.bytes + 40 * r.down.packets;
  r.handshake_completed = true;
  r.close_reason = ew::flow::FlowCloseReason::kTcpTeardown;
  r.rtt.add(3000 + static_cast<std::int64_t>(ew::core::uniform_below(rng, 1000)));
  r.rtt.add(2500);
  r.up.retransmits = static_cast<std::uint32_t>(ew::core::uniform_below(rng, 20));
  r.down.retransmits = static_cast<std::uint32_t>(ew::core::uniform_below(rng, 50));
  r.down.out_of_order = static_cast<std::uint32_t>(ew::core::uniform_below(rng, 10));
  r.l7 = ew::dpi::L7Protocol::kTls;
  r.web = ew::dpi::WebProtocol::kHttp2;
  r.server_name = "edge-star-mini-shv-01-mxp1.facebook.com";
  r.name_source = ew::flow::NameSource::kTlsSni;
  r.http_status = static_cast<std::uint16_t>(ew::core::uniform_below(rng, 600));
  r.content_type = "application/octet-stream";
  return r;
}

void expect_equal(const FlowRecord& a, const FlowRecord& b) {
  EXPECT_EQ(a.client_ip, b.client_ip);
  EXPECT_EQ(a.server_ip, b.server_ip);
  EXPECT_EQ(a.client_port, b.client_port);
  EXPECT_EQ(a.server_port, b.server_port);
  EXPECT_EQ(a.proto, b.proto);
  EXPECT_EQ(a.access, b.access);
  EXPECT_EQ(a.first_packet, b.first_packet);
  EXPECT_EQ(a.last_packet, b.last_packet);
  EXPECT_EQ(a.up.packets, b.up.packets);
  EXPECT_EQ(a.up.bytes, b.up.bytes);
  EXPECT_EQ(a.up.bytes_with_hdr, b.up.bytes_with_hdr);
  EXPECT_EQ(a.down.bytes, b.down.bytes);
  EXPECT_EQ(a.handshake_completed, b.handshake_completed);
  EXPECT_EQ(a.close_reason, b.close_reason);
  EXPECT_EQ(a.rtt.samples, b.rtt.samples);
  EXPECT_EQ(a.rtt.min_us, b.rtt.min_us);
  EXPECT_EQ(a.rtt.max_us, b.rtt.max_us);
  EXPECT_EQ(a.up.retransmits, b.up.retransmits);
  EXPECT_EQ(a.down.retransmits, b.down.retransmits);
  EXPECT_EQ(a.down.out_of_order, b.down.out_of_order);
  EXPECT_EQ(a.l7, b.l7);
  EXPECT_EQ(a.web, b.web);
  EXPECT_EQ(a.server_name, b.server_name);
  EXPECT_EQ(a.name_source, b.name_source);
  EXPECT_EQ(a.http_status, b.http_status);
  EXPECT_EQ(a.content_type, b.content_type);
}

struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() /
                   ("ewlake_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter()++))) {}
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::vector<FlowRecord> sample_batch(std::uint64_t seed, std::size_t n) {
  std::vector<FlowRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample_record(seed * 100'000 + i));
  return out;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void spew(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Hand-rolled format-v1 writer (the pre-seal format: per block
/// u32le len | u32le truncated-fnv1a64(uncompressed) | compressed body).
void write_v1_file(const fs::path& path, std::span<const FlowRecord> records,
                   std::size_t block_records = 512) {
  ByteWriter out;
  out.string("EWLK");
  out.u8(1);
  for (std::size_t first = 0; first < records.size(); first += block_records) {
    const std::size_t n = std::min(block_records, records.size() - first);
    ByteWriter block;
    for (std::size_t i = 0; i < n; ++i) ew::storage::encode_record(records[first + i], block);
    const auto compressed = ew::storage::compress_block(block.view());
    out.u32le(static_cast<std::uint32_t>(compressed.size()));
    out.u32le(static_cast<std::uint32_t>(ew::core::fnv1a64(block.view())));
    out.bytes(compressed);
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(out.view().data()),
          static_cast<std::streamsize>(out.size()));
}

/// Every delivered record must be byte-identical to some prefix-preserving
/// subsequence of `expected` (damage may drop whole blocks, never invent
/// or alter records).
void expect_subsequence(const std::vector<FlowRecord>& delivered,
                        const std::vector<FlowRecord>& expected) {
  std::vector<std::string> expected_wire;
  for (const auto& r : expected) {
    ByteWriter w;
    ew::storage::encode_record(r, w);
    expected_wire.emplace_back(reinterpret_cast<const char*>(w.view().data()), w.size());
  }
  std::size_t cursor = 0;
  for (const auto& r : delivered) {
    ByteWriter w;
    ew::storage::encode_record(r, w);
    const std::string wire(reinterpret_cast<const char*>(w.view().data()), w.size());
    while (cursor < expected_wire.size() && expected_wire[cursor] != wire) ++cursor;
    ASSERT_LT(cursor, expected_wire.size()) << "delivered record not in expected stream";
    ++cursor;
  }
}

}  // namespace

// ------------------------------------------------------------------ varint

TEST(Varint, RoundTripsBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0,   1,    127,        128,
                                  300, 16383, 16384,     0xffffffffull,
                                  0xffffffffffffffffull, 42};
  for (auto v : values) ew::storage::put_varint(w, v);
  ByteReader r{w.view()};
  for (auto v : values) EXPECT_EQ(ew::storage::get_varint(r), v);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Varint, SignedZigZag) {
  ByteWriter w;
  const std::int64_t values[] = {0, -1, 1, -64, 63, -1000000, 1000000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (auto v : values) ew::storage::put_varint_signed(w, v);
  ByteReader r{w.view()};
  for (auto v : values) EXPECT_EQ(ew::storage::get_varint_signed(r), v);
  EXPECT_TRUE(r.ok());
}

TEST(Varint, SmallValuesAreOneByte) {
  ByteWriter w;
  ew::storage::put_varint(w, 127);
  EXPECT_EQ(w.size(), 1u);
  ew::storage::put_varint(w, 128);
  EXPECT_EQ(w.size(), 3u);
}

// ------------------------------------------------------------------ codec

TEST(Codec, RecordRoundTrip) {
  const auto record = sample_record(1);
  ByteWriter w;
  ew::storage::encode_record(record, w);
  ByteReader r{w.view()};
  const auto back = ew::storage::decode_record(r);
  ASSERT_TRUE(back.has_value());
  expect_equal(record, *back);
}

TEST(Codec, ManyRandomRecordsRoundTrip) {
  ByteWriter w;
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 200; ++i) {
    records.push_back(sample_record(i));
    ew::storage::encode_record(records.back(), w);
  }
  ByteReader r{w.view()};
  for (const auto& expected : records) {
    const auto got = ew::storage::decode_record(r);
    ASSERT_TRUE(got.has_value());
    expect_equal(expected, *got);
  }
  EXPECT_FALSE(ew::storage::decode_record(r).has_value());  // clean EOF
}

TEST(Codec, ZeroRttRecordOmitsRttFields) {
  FlowRecord r = sample_record(2);
  r.rtt = {};
  ByteWriter w;
  ew::storage::encode_record(r, w);
  ByteReader reader{w.view()};
  const auto back = ew::storage::decode_record(reader);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rtt.samples, 0u);
}

TEST(Codec, TruncatedInputFailsCleanly) {
  const auto record = sample_record(3);
  ByteWriter w;
  ew::storage::encode_record(record, w);
  for (std::size_t cut = 1; cut < w.size(); cut += 7) {
    ByteReader r{w.view().first(cut)};
    EXPECT_FALSE(ew::storage::decode_record(r).has_value()) << cut;
  }
}

// Parameterized sweep: extreme field values must survive the codec.
class CodecExtremes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecExtremes, RoundTripsExtremeVolumes) {
  FlowRecord r = sample_record(9);
  r.up.bytes = GetParam();
  r.down.bytes = GetParam() / 3;
  r.up.packets = GetParam() / 1000 + 1;
  r.server_name.assign(GetParam() % 200, 'x');
  ByteWriter w;
  ew::storage::encode_record(r, w);
  ByteReader reader{w.view()};
  const auto back = ew::storage::decode_record(reader);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->up.bytes, r.up.bytes);
  EXPECT_EQ(back->server_name, r.server_name);
}

INSTANTIATE_TEST_SUITE_P(VolumeSweep, CodecExtremes,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 65535ull,
                                           1'000'000ull, 0xffffffffull,
                                           0x7fffffffffffffffull));

// -------------------------------------------------------------- compressor

TEST(Compress, RoundTripStructuredData) {
  // Concatenated records: realistic, compressible input.
  ByteWriter w;
  for (std::uint64_t i = 0; i < 500; ++i) ew::storage::encode_record(sample_record(i % 10), w);
  const std::vector<std::byte> input{w.view().begin(), w.view().end()};
  const auto compressed = ew::storage::compress_block(input);
  EXPECT_LT(compressed.size(), input.size() / 2);  // long repeats compress well
  const auto back = ew::storage::decompress_block(compressed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, input);
}

TEST(Compress, RoundTripRandomData) {
  ew::core::Xoshiro256 rng{77};
  std::vector<std::byte> input;
  for (int i = 0; i < 10000; ++i) input.push_back(static_cast<std::byte>(rng() & 0xff));
  const auto compressed = ew::storage::compress_block(input);
  EXPECT_LE(compressed.size(), input.size() + 5);  // stored fallback bound
  const auto back = ew::storage::decompress_block(compressed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, input);
}

TEST(Compress, RoundTripEdgeCases) {
  for (const std::string& s :
       {std::string{}, std::string{"x"}, std::string{"abcd"}, std::string(100000, 'a'),
        std::string{"abcabcabcabcabcabc"}}) {
    const auto input = ew::core::to_bytes(s);
    const auto back = ew::storage::decompress_block(ew::storage::compress_block(input));
    ASSERT_TRUE(back.has_value()) << s.size();
    EXPECT_EQ(*back, input) << s.size();
  }
}

TEST(Compress, RandomInputsPropertyRoundTrip) {
  ew::core::Xoshiro256 rng{123};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::byte> input;
    const auto len = ew::core::uniform_below(rng, 5000);
    // Mix of runs and randomness.
    for (std::uint64_t i = 0; i < len; ++i) {
      input.push_back(static_cast<std::byte>(
          ew::core::chance(rng, 0.7) ? 0xAB : static_cast<std::uint8_t>(rng() & 0xff)));
    }
    const auto back = ew::storage::decompress_block(ew::storage::compress_block(input));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, input);
  }
}

TEST(Compress, RejectsCorruptedHeaders) {
  EXPECT_FALSE(ew::storage::decompress_block({}).has_value());
  const auto input = ew::core::to_bytes("hello world hello world hello world");
  auto compressed = ew::storage::compress_block(input);
  compressed[0] = static_cast<std::byte>(9);  // bogus scheme
  EXPECT_FALSE(ew::storage::decompress_block(compressed).has_value());
}

TEST(Compress, RejectsTruncatedBody) {
  std::vector<std::byte> input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<std::byte>(i % 7));
  auto compressed = ew::storage::compress_block(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(ew::storage::decompress_block(compressed).has_value());
}

// --------------------------------------------------------------- data lake

TEST(DataLake, WriteScanRoundTrip) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 1000; ++i) records.push_back(sample_record(i));
  const CivilDate day{2014, 4, 15};
  const auto bytes = lake.append(day, records);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_GT(*bytes, 0u);
  const auto back = lake.read_day(day);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) expect_equal(records[i], back[i]);
}

TEST(DataLake, AppendAccumulates) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2014, 4, 15};
  std::vector<FlowRecord> batch{sample_record(1), sample_record(2)};
  lake.append(day, batch);
  lake.append(day, batch);
  EXPECT_EQ(lake.read_day(day).size(), 4u);
}

TEST(DataLake, DaysAreSortedAndDiscoverable) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  std::vector<FlowRecord> batch{sample_record(1)};
  lake.append({2017, 4, 2}, batch);
  lake.append({2013, 3, 1}, batch);
  lake.append({2014, 12, 25}, batch);
  const auto days = lake.days();
  ASSERT_EQ(days.size(), 3u);
  EXPECT_EQ(days[0], (CivilDate{2013, 3, 1}));
  EXPECT_EQ(days[2], (CivilDate{2017, 4, 2}));
  EXPECT_TRUE(lake.has_day({2014, 12, 25}));
  EXPECT_FALSE(lake.has_day({2015, 1, 1}));
}

TEST(DataLake, MissingDayScanReturnsFalse) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  int count = 0;
  EXPECT_FALSE(lake.scan_day({2015, 6, 1}, [&](const FlowRecord&) { ++count; }));
  EXPECT_EQ(count, 0);
}

TEST(DataLake, CorruptFileDetected) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 1, 1};
  std::vector<FlowRecord> batch{sample_record(5)};
  lake.append(day, batch);
  // Flip bytes in the middle of the file.
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  auto contents = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }();
  contents[contents.size() / 2] ^= 0x5A;
  contents[contents.size() / 2 + 1] ^= 0x5A;
  std::ofstream(path, std::ios::binary) << contents;
  int count = 0;
  EXPECT_FALSE(lake.scan_day(day, [&](const FlowRecord&) { ++count; }));
}

TEST(DataLake, CompressionShrinksTypicalLogs) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 2, 2};
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 5000; ++i) records.push_back(sample_record(i % 50));
  lake.append(day, records);
  ByteWriter raw;
  for (const auto& r : records) ew::storage::encode_record(r, raw);
  EXPECT_LT(lake.file_bytes(day), raw.size());
}

TEST(DailyLakeWriter, RoutesRecordsToTheirDays) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  {
    ew::storage::DailyLakeWriter writer{lake, 4};
    for (int d = 0; d < 3; ++d) {
      for (int i = 0; i < 5; ++i) {
        auto r = sample_record(static_cast<std::uint64_t>(d * 10 + i));
        r.first_packet =
            ew::core::Timestamp::from_date_time({2016, 5, static_cast<std::uint8_t>(4 + d)}, 10);
        r.last_packet = r.first_packet + 1'000'000;
        writer.add(std::move(r));
      }
    }
    EXPECT_GT(writer.records_written(), 0u);  // 4-record buffers already flushed
  }  // destructor flushes the rest
  EXPECT_EQ(lake.read_day({2016, 5, 4}).size(), 5u);
  EXPECT_EQ(lake.read_day({2016, 5, 5}).size(), 5u);
  EXPECT_EQ(lake.read_day({2016, 5, 6}).size(), 5u);
  EXPECT_EQ(lake.days().size(), 3u);
}

TEST(DailyLakeWriter, MidnightRollover) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  ew::storage::DailyLakeWriter writer{lake};
  // A flow starting at 23:59:59 belongs to its start day even if it ends
  // the next day.
  auto r = sample_record(1);
  r.first_packet = ew::core::Timestamp::from_date_time({2016, 5, 4}, 23, 59, 59);
  r.last_packet = r.first_packet + 10'000'000;  // crosses midnight
  writer.add(std::move(r));
  writer.finish();
  EXPECT_EQ(lake.read_day({2016, 5, 4}).size(), 1u);
  EXPECT_FALSE(lake.has_day({2016, 5, 5}));
}

TEST(DataLake, CsvExportWritesHeaderAndRows) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 7, 7};
  std::vector<FlowRecord> records{sample_record(1), sample_record(2), sample_record(3)};
  lake.append(day, records);
  const auto csv_path = dir.path / "out.csv";
  const auto exported = lake.export_csv(day, csv_path);
  EXPECT_TRUE(exported.ok());
  EXPECT_EQ(exported.records_delivered, 3u);
  std::ifstream in(csv_path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, ew::storage::csv_header());
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

// ------------------------------------------------------- durability (v2)

TEST(DataLakeV2, CleanDayIsSealedAndHealthy) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 3, 3};
  const auto records = sample_batch(1, 5000);  // > kBlockRecords: multi-block
  ASSERT_TRUE(lake.append(day, records).has_value());

  const auto scan = lake.scan_day(day, [](const FlowRecord&) {});
  EXPECT_TRUE(scan.ok());
  EXPECT_EQ(scan.records_delivered, records.size());
  EXPECT_EQ(scan.blocks_skipped, 0u);

  const auto health = lake.fsck_day(day);
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(health.version, 3);  // columnar v3 is the default write format
  EXPECT_TRUE(health.sealed);
  EXPECT_FALSE(health.torn_tail);
  EXPECT_EQ(health.records_ok, records.size());
  EXPECT_EQ(health.records_lost, 0u);
  EXPECT_EQ(health.blocks_ok, (records.size() + 4095) / 4096);
}

TEST(DataLakeV2, EmptyAppendWritesNothing) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const auto bytes = lake.append({2016, 3, 4}, {});
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, 0u);
  EXPECT_FALSE(lake.has_day({2016, 3, 4}));
}

TEST(DataLakeV2, FsckReportsMissingDay) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  EXPECT_EQ(lake.fsck_day({2016, 3, 5}).errc, ew::core::Errc::kNotFound);
  EXPECT_EQ(lake.scan_day({2016, 3, 5}, [](const FlowRecord&) {}).errc,
            ew::core::Errc::kNotFound);
}

TEST(DataLakeV2, TornTailIsDetectedAndHealedByNextAppend) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 4, 4};
  const auto batch1 = sample_batch(1, 300);
  ASSERT_TRUE(lake.append(day, batch1).has_value());
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);

  // Simulate a crash mid-append: valid file plus a half-written block.
  auto contents = slurp(path);
  const auto sealed_size = contents.size();
  contents += std::string(37, '\x7f');
  spew(path, contents);

  ew::storage::ScanResult status;
  const auto before = lake.read_day(day, status);
  EXPECT_EQ(before.size(), batch1.size());  // prefix intact, no garbage
  EXPECT_FALSE(status.ok());

  // The next append drops the torn tail and continues the sealed stream.
  const auto batch2 = sample_batch(2, 300);
  ASSERT_TRUE(lake.append(day, batch2).has_value());
  const auto after = lake.read_day(day, status);
  EXPECT_TRUE(status.ok());
  ASSERT_EQ(after.size(), batch1.size() + batch2.size());
  expect_equal(after.front(), batch1.front());
  expect_equal(after.back(), batch2.back());
  EXPECT_TRUE(lake.fsck_day(day).healthy());
  EXPECT_GT(lake.file_bytes(day), sealed_size);
}

TEST(DataLakeV2, MidFileCorruptionSkipsOnlyTheDamagedBlock) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 5, 5};
  const auto records = sample_batch(3, 9000);  // 3 blocks: 4096+4096+808
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);

  // Flip one byte inside the first block's body.
  auto contents = slurp(path);
  contents[200] ^= 0x10;
  spew(path, contents);

  ew::storage::ScanResult status;
  const auto delivered = lake.read_day(day, status);
  EXPECT_FALSE(status.ok());
  EXPECT_GE(status.blocks_skipped, 1u);
  // Blocks 1 and 2 resynchronize via sequence numbers + CRC.
  EXPECT_EQ(delivered.size(), records.size() - 4096);
  expect_subsequence(delivered, records);

  // fsck: exact loss accounting against the seal.
  const auto health = lake.fsck_day(day);
  EXPECT_FALSE(health.healthy());
  EXPECT_TRUE(health.sealed);  // seal itself survived
  EXPECT_EQ(health.records_lost, 4096u);
  EXPECT_GE(health.blocks_quarantined, 1u);
}

TEST(DataLakeV2, RepairQuarantinesAndReseals) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 6, 6};
  const auto records = sample_batch(4, 9000);
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  auto contents = slurp(path);
  contents[contents.size() / 2] ^= 0x01;  // damage block 1 or 2
  spew(path, contents);

  const auto report = lake.repair_day(day);
  EXPECT_TRUE(report.repaired);
  EXPECT_EQ(report.errc, ew::core::Errc::kOk);
  EXPECT_GE(report.blocks_quarantined, 1u);
  EXPECT_GT(report.bytes_quarantined, 0u);

  // Damaged bytes are preserved for forensics, not destroyed.
  EXPECT_TRUE(fs::exists(dir.path / "quarantine"));
  EXPECT_FALSE(fs::is_empty(dir.path / "quarantine"));

  // The repaired file is a pristine sealed v2 day.
  const auto health = lake.fsck_day(day);
  EXPECT_TRUE(health.healthy());
  EXPECT_TRUE(health.sealed);
  ew::storage::ScanResult status;
  const auto delivered = lake.read_day(day, status);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(delivered.size(), records.size() - 4096);
  expect_subsequence(delivered, records);

  // And the repaired day accepts further appends.
  const auto more = sample_batch(5, 100);
  ASSERT_TRUE(lake.append(day, more).has_value());
  EXPECT_EQ(lake.read_day(day).size(), records.size() - 4096 + more.size());
}

TEST(DataLakeV2, RepairOnHealthyDayIsANoOp) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 6, 7};
  ASSERT_TRUE(lake.append(day, sample_batch(1, 50)).has_value());
  const auto before = slurp(dir.path / ew::storage::DataLake::day_filename(day));
  const auto report = lake.repair_day(day);
  EXPECT_FALSE(report.repaired);
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(slurp(dir.path / ew::storage::DataLake::day_filename(day)), before);
}

TEST(DataLakeV2, LakeWideFsckAndRepair) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  ASSERT_TRUE(lake.append({2016, 7, 1}, sample_batch(1, 100)).has_value());
  ASSERT_TRUE(lake.append({2016, 7, 2}, sample_batch(2, 100)).has_value());
  EXPECT_TRUE(lake.fsck().clean());

  const auto path = dir.path / ew::storage::DataLake::day_filename({2016, 7, 2});
  auto contents = slurp(path);
  contents[contents.size() - 3] ^= 0xff;  // damage the second day's seal
  spew(path, contents);

  const auto report = lake.fsck();
  ASSERT_EQ(report.days.size(), 2u);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.days[0].healthy());
  EXPECT_FALSE(report.days[1].healthy());

  lake.repair();
  EXPECT_TRUE(lake.fsck().clean());
  EXPECT_EQ(lake.read_day({2016, 7, 2}).size(), 100u);
}

// ------------------------------------------------- fault-injection matrix

TEST(FaultMatrix, EveryInjectedFaultIsRecoveredOrQuarantined) {
  using ew::storage::FaultKind;
  using ew::storage::FaultPlan;
  using ew::storage::FaultyFile;

  const auto batch1 = sample_batch(10, 5000);
  const auto batch2 = sample_batch(20, 5000);
  std::vector<FlowRecord> all;
  all.insert(all.end(), batch1.begin(), batch1.end());
  all.insert(all.end(), batch2.begin(), batch2.end());
  const CivilDate day{2016, 8, 8};

  // Measure the second append's on-disk size once, to aim faults inside it.
  std::uint64_t append_bytes = 0;
  {
    TempDir probe_dir;
    ew::storage::DataLake probe{probe_dir.path};
    ASSERT_TRUE(probe.append(day, batch1).has_value());
    const auto bytes = probe.append(day, batch2);
    ASSERT_TRUE(bytes.has_value());
    append_bytes = *bytes;
  }
  ASSERT_GT(append_bytes, 64u);

  const FaultKind kinds[] = {FaultKind::kShortWrite, FaultKind::kNoSpace, FaultKind::kBitFlip,
                             FaultKind::kCrashAtOffset};
  for (const auto kind : kinds) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto plan = FaultPlan::seeded(kind, seed, 1, append_bytes - 1);
      SCOPED_TRACE(std::string(to_string(kind)) + " at byte " + std::to_string(plan.at_byte));

      TempDir dir;
      ew::storage::DataLake lake{dir.path};
      ASSERT_TRUE(lake.append(day, batch1).has_value());  // sealed baseline
      lake.set_file_factory(FaultyFile::factory_once(plan));
      const auto result = lake.append(day, batch2);

      ew::storage::ScanResult status;
      const auto delivered = lake.read_day(day, status);
      // Invariant 1: no invented or altered records, ever.
      expect_subsequence(delivered, all);
      // Invariant 2: the sealed first batch is never harmed.
      ASSERT_GE(delivered.size(), batch1.size());
      for (std::size_t i = 0; i < batch1.size(); ++i) expect_equal(delivered[i], batch1[i]);

      switch (kind) {
        case FaultKind::kShortWrite:
        case FaultKind::kNoSpace:
          // Survivable failure: the append reported the error and rolled
          // back, so the lake holds exactly the first batch, still clean.
          ASSERT_FALSE(result.has_value());
          EXPECT_EQ(result.error(), kind == FaultKind::kNoSpace ? ew::core::Errc::kNoSpace
                                                                : ew::core::Errc::kIoError);
          EXPECT_TRUE(status.ok());
          EXPECT_EQ(delivered.size(), batch1.size());
          EXPECT_TRUE(lake.fsck_day(day).healthy());
          break;
        case FaultKind::kCrashAtOffset:
          // Crash: rollback impossible, a torn tail remains. Loss is
          // bounded by the unacknowledged batch.
          ASSERT_FALSE(result.has_value());
          EXPECT_EQ(result.error(), ew::core::Errc::kCrashed);
          EXPECT_FALSE(status.ok());
          EXPECT_LE(delivered.size(), all.size());
          break;
        case FaultKind::kBitFlip: {
          // Silent media corruption: the write "succeeded", but scan/fsck
          // must still detect the damage — no flipped bit goes unnoticed.
          ASSERT_TRUE(result.has_value());
          EXPECT_FALSE(status.ok());
          EXPECT_LE(all.size() - delivered.size(), batch2.size());
          break;
        }
        case FaultKind::kNone: break;
      }

      // Invariant 3: fsck's sealed-loss accounting never exceeds the
      // unacknowledged batch.
      const auto health = lake.fsck_day(day);
      EXPECT_LE(health.records_lost, batch2.size());

      // Invariant 4: repair always converges to a healthy sealed day that
      // retains everything that was recoverable.
      lake.repair_day(day);
      EXPECT_TRUE(lake.fsck_day(day).healthy());
      ew::storage::ScanResult after_status;
      const auto after = lake.read_day(day, after_status);
      EXPECT_TRUE(after_status.ok());
      EXPECT_EQ(after.size(), delivered.size());
      expect_subsequence(after, all);
    }
  }
}

// ------------------------------------------------- v1 compat & migration

TEST(DataLakeV1, V1FilesRemainReadable) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2014, 1, 1};
  const auto records = sample_batch(7, 1500);
  write_v1_file(dir.path / ew::storage::DataLake::day_filename(day), records);

  ew::storage::ScanResult status;
  const auto delivered = lake.read_day(day, status);
  EXPECT_TRUE(status.ok());
  ASSERT_EQ(delivered.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) expect_equal(delivered[i], records[i]);
  EXPECT_EQ(lake.fsck_day(day).version, 1);
}

TEST(DataLakeV1, AppendToV1FileStaysV1) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2014, 1, 2};
  const auto batch1 = sample_batch(7, 400);
  write_v1_file(dir.path / ew::storage::DataLake::day_filename(day), batch1);
  const auto batch2 = sample_batch(8, 400);
  ASSERT_TRUE(lake.append(day, batch2).has_value());
  EXPECT_EQ(lake.fsck_day(day).version, 1);  // no silent format change
  EXPECT_EQ(lake.read_day(day).size(), batch1.size() + batch2.size());
}

TEST(DataLakeV1, MigrateToV2PreservesEveryRecord) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2014, 2, 2};
  const auto records = sample_batch(9, 1500);
  write_v1_file(dir.path / ew::storage::DataLake::day_filename(day), records);

  ASSERT_TRUE(lake.migrate_to_v2(day).ok());
  const auto health = lake.fsck_day(day);
  EXPECT_EQ(health.version, 2);
  EXPECT_TRUE(health.sealed);
  EXPECT_TRUE(health.healthy());

  ew::storage::ScanResult status;
  const auto delivered = lake.read_day(day, status);
  EXPECT_TRUE(status.ok());
  ASSERT_EQ(delivered.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) expect_equal(delivered[i], records[i]);

  // Idempotent, and the upgraded day seals future appends.
  EXPECT_TRUE(lake.migrate_to_v2(day).ok());
  ASSERT_TRUE(lake.append(day, sample_batch(10, 10)).has_value());
  EXPECT_TRUE(lake.fsck_day(day).sealed);
}

TEST(DataLakeV1, TornV1TailDeliversPrefixAndRepairsToV2) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2014, 3, 3};
  const auto records = sample_batch(11, 1024);  // two 512-record v1 blocks
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  write_v1_file(path, records);
  auto contents = slurp(path);
  spew(path, contents.substr(0, contents.size() - 10));  // torn final block

  ew::storage::ScanResult status;
  const auto delivered = lake.read_day(day, status);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(delivered.size(), 512u);  // the valid prefix, nothing invented
  expect_subsequence(delivered, records);

  const auto report = lake.repair_day(day);
  EXPECT_TRUE(report.repaired);
  EXPECT_TRUE(lake.fsck_day(day).healthy());
  EXPECT_EQ(lake.fsck_day(day).version, 2);
  EXPECT_EQ(lake.read_day(day).size(), 512u);
  EXPECT_FALSE(fs::is_empty(dir.path / "quarantine"));
}

TEST(DataLake, ForeignFileIsRejectedNotParsed) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2015, 9, 9};
  spew(dir.path / ew::storage::DataLake::day_filename(day), "not a lake file at all");
  EXPECT_EQ(lake.scan_day(day, [](const FlowRecord&) {}).errc, ew::core::Errc::kBadMagic);
  EXPECT_EQ(lake.fsck_day(day).errc, ew::core::Errc::kBadMagic);
  EXPECT_FALSE(lake.append(day, sample_batch(1, 5)).has_value());
}

// ------------------------------------------------- writer failure handling

TEST(DailyLakeWriter, KeepsRecordsWhenAppendFailsAndRetries) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  // First file handle fails with ENOSPC almost immediately.
  lake.set_file_factory(ew::storage::FaultyFile::factory_once(
      {ew::storage::FaultKind::kNoSpace, /*at_byte=*/8, /*bit=*/0}));

  ew::storage::DailyLakeWriter writer{lake, 4};
  const auto day = CivilDate{2016, 5, 4};
  for (int i = 0; i < 4; ++i) {
    auto r = sample_record(static_cast<std::uint64_t>(i));
    r.first_packet = ew::core::Timestamp::from_date_time(day, 10);
    r.last_packet = r.first_packet + 1'000;
    writer.add(std::move(r));  // 4th add triggers the failing flush
  }
  EXPECT_EQ(writer.append_failures(), 1u);
  EXPECT_EQ(writer.last_error(), ew::core::Errc::kNoSpace);
  EXPECT_EQ(writer.records_written(), 0u);
  EXPECT_EQ(writer.buffered(), 4u);  // nothing lost

  writer.finish();  // factory is healthy again: the retry lands everything
  EXPECT_EQ(writer.records_written(), 4u);
  EXPECT_EQ(writer.records_dropped(), 0u);
  EXPECT_EQ(lake.read_day(day).size(), 4u);
  EXPECT_TRUE(lake.fsck_day(day).healthy());
}

TEST(DailyLakeWriter, FlushAllReportsTypedErrorAndLakeStaysConsistent) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const auto day = CivilDate{2016, 5, 4};
  ew::storage::DailyLakeWriter writer{lake, 64};
  for (int i = 0; i < 10; ++i) {
    auto r = sample_record(static_cast<std::uint64_t>(i));
    r.first_packet = ew::core::Timestamp::from_date_time(day, 10);
    r.last_packet = r.first_packet + 1'000;
    writer.add(std::move(r));
  }

  // The volume fills up right as the flush starts.
  lake.set_file_factory(ew::storage::FaultyFile::factory_once(
      {ew::storage::FaultKind::kNoSpace, /*at_byte=*/0, /*bit=*/0}));
  const auto result = writer.flush_all();
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error(), ew::core::Errc::kNoSpace);
  // The failed append rolled back completely: no partial day file, clean
  // fsck, and every record still buffered for the retry.
  EXPECT_FALSE(lake.has_day(day));
  EXPECT_TRUE(lake.fsck().clean());
  EXPECT_EQ(writer.buffered(), 10u);

  // Space freed: the same call now lands the batch.
  ASSERT_TRUE(writer.flush_all());
  EXPECT_EQ(writer.buffered(), 0u);
  EXPECT_EQ(lake.read_day(day).size(), 10u);
  EXPECT_TRUE(lake.fsck_day(day).healthy());
}

// ----------------------------------------------------- columnar v3 lake

namespace {

/// Records varied enough to exercise every v3 column and make blocks
/// zone-distinguishable: service changes per 4096-record block, transport
/// and timestamps vary per row, some rows carry no RTT samples or name.
std::vector<FlowRecord> varied_batch(std::uint64_t seed, std::size_t n, CivilDate day) {
  static constexpr const char* kNames[] = {"www.google.com", "static.facebook.com",
                                           "api.netflix.com", "cdn.somewhere-else.org"};
  auto out = sample_batch(seed, n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& r = out[i];
    r.server_name = kNames[(i / 4096) % 4];
    r.proto = i % 3 == 0   ? ew::core::TransportProto::kUdp
              : i % 7 == 0 ? ew::core::TransportProto::kOther
                           : ew::core::TransportProto::kTcp;
    r.first_packet = ew::core::Timestamp::from_date_time(day, static_cast<int>(i * 24 / n),
                                                         static_cast<int>(i % 60),
                                                         static_cast<int>((i / 60) % 60));
    r.last_packet = r.first_packet + 5'000'000;
    if (i % 5 == 0) r.rtt = ew::flow::RttStats{};  // dense RTT sub-column gap
    if (i % 11 == 0) r.server_name.clear();
  }
  return out;
}

/// Overwrite bytes inside the *first block's body* of a day file and
/// recompute the frame CRC. This simulates an encoder bug (a lying zone
/// map, a bad dictionary) rather than media damage: the frame still
/// checksums clean, so only the columnar decoder's own cross-checks stand
/// between the lie and the query results.
void patch_first_body(const fs::path& path, std::size_t offset,
                      std::span<const unsigned char> replacement) {
  auto contents = slurp(path);
  const std::size_t frame = 5;  // "EWLK" + version byte
  ASSERT_GE(contents.size(), frame + 16);
  const auto u8at = [&](std::size_t i) { return static_cast<unsigned char>(contents[i]); };
  const std::size_t body_len = u8at(frame) | (u8at(frame + 1) << 8) | (u8at(frame + 2) << 16) |
                               (static_cast<std::size_t>(u8at(frame + 3)) << 24);
  const std::size_t body = frame + 16;
  ASSERT_LE(offset + replacement.size(), body_len);
  for (std::size_t i = 0; i < replacement.size(); ++i) {
    contents[body + offset + i] = static_cast<char>(replacement[i]);
  }
  const auto* bytes = reinterpret_cast<const std::byte*>(contents.data());
  std::uint32_t crc = ew::core::crc32c({bytes + frame, 12});
  crc = ew::core::crc32c({bytes + body, body_len}, crc);
  for (int i = 0; i < 4; ++i) contents[frame + 12 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  spew(path, contents);
}

}  // namespace

TEST(ColumnarV3, BodyRoundTripAndZonePeek) {
  const CivilDate day{2017, 1, 5};
  const auto records = varied_batch(31, 1000, day);
  ByteWriter body;
  ew::storage::encode_columnar_block(records, ew::services::ServiceCatalog::standard(), body);
  ASSERT_TRUE(ew::storage::is_columnar_block(body.view()));

  const auto zone = ew::storage::peek_zone_map(body.view());
  ASSERT_TRUE(zone.has_value());
  EXPECT_EQ(zone->record_count, records.size());
  std::int64_t ts_min = records[0].first_packet.micros(), ts_max = ts_min;
  for (const auto& r : records) {
    ts_min = std::min(ts_min, r.first_packet.micros());
    ts_max = std::max(ts_max, r.first_packet.micros());
  }
  EXPECT_EQ(zone->ts_min_us, ts_min);
  EXPECT_EQ(zone->ts_max_us, ts_max);

  ew::storage::ColumnScratch scratch;
  std::vector<FlowRecord> decoded;
  std::uint64_t delivered = 0;
  auto sink = [&](const FlowRecord& r) { decoded.push_back(r); };
  const auto status = ew::storage::decode_columnar_block(
      body.view(), scratch, nullptr, delivered, sink,
      static_cast<std::uint32_t>(records.size()));
  EXPECT_EQ(status, ew::storage::BlockDecodeStatus::kOk);
  EXPECT_EQ(delivered, records.size());
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) expect_equal(decoded[i], records[i]);
}

TEST(ColumnarV3, TruncatedBodySweepDecodesAtomically) {
  const CivilDate day{2017, 1, 6};
  const auto records = varied_batch(32, 600, day);
  ByteWriter body;
  ew::storage::encode_columnar_block(records, ew::services::ServiceCatalog::standard(), body);

  ew::storage::ColumnScratch scratch;
  for (std::size_t len = 0; len < body.size(); ++len) {
    std::uint64_t delivered = 0;
    auto sink = [](const FlowRecord&) {};
    const auto status = ew::storage::decode_columnar_block(body.view().subspan(0, len), scratch,
                                                           nullptr, delivered, sink);
    // A torn column segment must never crash and never deliver a partial
    // block: columnar decode is all-or-nothing.
    EXPECT_EQ(status, ew::storage::BlockDecodeStatus::kCorrupt) << "prefix length " << len;
    EXPECT_EQ(delivered, 0u) << "prefix length " << len;
  }
}

TEST(DataLakeV3, FormatControlsAndAppendContinuity) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  EXPECT_EQ(lake.write_format(), ew::storage::LakeFormat::kV3);

  const CivilDate v2_day{2017, 2, 1}, v3_day{2017, 2, 2};
  lake.set_write_format(ew::storage::LakeFormat::kV2);
  ASSERT_TRUE(lake.append(v2_day, sample_batch(1, 100)).has_value());
  EXPECT_EQ(lake.fsck_day(v2_day).version, 2);

  lake.set_write_format(ew::storage::LakeFormat::kV3);
  ASSERT_TRUE(lake.append(v3_day, sample_batch(2, 100)).has_value());
  EXPECT_EQ(lake.fsck_day(v3_day).version, 3);

  // Appends continue the file's existing format, whatever the lake-wide
  // default says — a day file never mixes body formats.
  ASSERT_TRUE(lake.append(v2_day, sample_batch(3, 100)).has_value());
  EXPECT_EQ(lake.fsck_day(v2_day).version, 2);
  lake.set_write_format(ew::storage::LakeFormat::kV2);
  ASSERT_TRUE(lake.append(v3_day, sample_batch(4, 100)).has_value());
  EXPECT_EQ(lake.fsck_day(v3_day).version, 3);

  for (const auto day : {v2_day, v3_day}) {
    EXPECT_TRUE(lake.fsck_day(day).healthy());
    EXPECT_EQ(lake.read_day(day).size(), 200u);
  }
}

TEST(DataLakeV3, RewriteTranscodesBothWays) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 3, 1};
  const auto records = varied_batch(33, 9000, day);
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  const auto v3_bytes = slurp(path);

  ASSERT_TRUE(lake.rewrite_day(day, ew::storage::LakeFormat::kV2).has_value());
  EXPECT_EQ(lake.fsck_day(day).version, 2);
  EXPECT_TRUE(lake.fsck_day(day).healthy());
  {
    ew::storage::ScanResult status;
    const auto delivered = lake.read_day(day, status);
    EXPECT_TRUE(status.ok());
    ASSERT_EQ(delivered.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) expect_equal(delivered[i], records[i]);
  }

  // Transcoding back reproduces the original v3 file byte for byte: the
  // columnar encoder is deterministic and rewrite re-chunks identically.
  ASSERT_TRUE(lake.rewrite_day(day, ew::storage::LakeFormat::kV3).has_value());
  EXPECT_EQ(lake.fsck_day(day).version, 3);
  EXPECT_EQ(slurp(path), v3_bytes);

  // migrate_to_v2 understands v3 input (transcode, not a verbatim copy).
  ASSERT_TRUE(lake.migrate_to_v2(day).ok());
  EXPECT_EQ(lake.fsck_day(day).version, 2);
  EXPECT_EQ(lake.read_day(day).size(), records.size());
}

TEST(DataLakeV3, PredicatePushdownMatchesPostFilterAndPrunes) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 4, 1};
  const auto records = varied_batch(34, 9000, day);  // 3 blocks, service per block
  ASSERT_TRUE(lake.append(day, records).has_value());

  ew::storage::ScanPredicate by_service =
      ew::storage::ScanPredicate::for_service(ew::services::ServiceId::kNetflix);
  ew::storage::ScanPredicate by_proto =
      ew::storage::ScanPredicate::for_proto(ew::core::TransportProto::kUdp);
  ew::storage::ScanPredicate by_time;
  by_time.time_min_us = ew::core::Timestamp::from_date_time(day, 6).micros();
  by_time.time_max_us = ew::core::Timestamp::from_date_time(day, 12).micros() - 1;

  for (const auto& [name, pred] : {std::pair{"service", by_service},
                                   std::pair{"proto", by_proto},
                                   std::pair{"time", by_time}}) {
    SCOPED_TRACE(name);
    std::vector<FlowRecord> expected;
    for (const auto& r : records) {
      if (pred.matches(r)) expected.push_back(r);
    }
    ASSERT_FALSE(expected.empty());
    ASSERT_LT(expected.size(), records.size());

    std::vector<FlowRecord> got;
    auto sink = [&](const FlowRecord& r) { got.push_back(r); };
    const auto scan = lake.scan_day(day, pred, sink);
    EXPECT_TRUE(scan.ok());
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) expect_equal(got[i], expected[i]);
  }

  // The netflix records live in one block only: the other two are pruned on
  // their zone maps without decompressing a single segment.
  std::size_t n = 0;
  auto count = [&](const FlowRecord&) { ++n; };
  EXPECT_EQ(lake.scan_day(day, by_service, count).blocks_pruned, 2u);
  // An unrestricted scan prunes nothing.
  EXPECT_EQ(lake.scan_day(day, [](const FlowRecord&) {}).blocks_pruned, 0u);
}

TEST(DataLakeV3, LyingZoneMapIsDetectedDeliveredAndQuarantined) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 5, 1};
  const auto records = varied_batch(35, 1000, day);  // single block
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);

  // Zero the zone map's service bitmap (body offset 2 + 16) behind a valid
  // CRC: the map now claims "no service is present".
  const unsigned char zeros[4] = {0, 0, 0, 0};
  patch_first_body(path, 2 + 16, zeros);

  // An unfiltered scan still delivers every record — zone maps are never
  // authoritative — but flags the day so the lie cannot linger.
  std::vector<FlowRecord> got;
  auto sink = [&](const FlowRecord& r) { got.push_back(r); };
  const auto scan = lake.scan_day(day, sink);
  EXPECT_EQ(scan.errc, ew::core::Errc::kCorrupt);
  ASSERT_EQ(got.size(), records.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_equal(got[i], records[i]);

  // This is exactly the hazard: a selective scan that trusts the lying map
  // prunes the block and silently misses every record.
  std::size_t n = 0;
  auto count = [&](const FlowRecord&) { ++n; };
  const auto filtered = lake.scan_day(
      day, ew::storage::ScanPredicate::for_service(ew::services::ServiceId::kGoogle), count);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(filtered.blocks_pruned, 1u);

  // Which is why fsck deep-verifies columnar blocks and repair quarantines
  // the liar instead of leaving it to poison future selective scans.
  EXPECT_FALSE(lake.fsck_day(day).healthy());
  const auto report = lake.repair_day(day);
  EXPECT_TRUE(report.repaired);
  EXPECT_GE(report.blocks_quarantined, 1u);
  EXPECT_FALSE(fs::is_empty(dir.path / "quarantine"));
  EXPECT_TRUE(lake.fsck_day(day).healthy());
}

TEST(DataLakeV3, BadServiceDictionaryIsCorruptNotACrash) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 5, 2};
  const auto records = varied_batch(36, 1000, day);
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);

  // First dictionary entry (body offset 2 + 36 + 1) becomes an out-of-range
  // ServiceId, again behind a valid frame CRC.
  const unsigned char bogus[1] = {0xEE};
  patch_first_body(path, 2 + 36 + 1, bogus);

  std::size_t n = 0;
  auto count = [&](const FlowRecord&) { ++n; };
  const auto scan = lake.scan_day(day, count);
  EXPECT_EQ(scan.errc, ew::core::Errc::kCorrupt);
  EXPECT_EQ(n, 0u);  // atomic: no half-decoded block leaks records
  EXPECT_GE(scan.blocks_skipped, 1u);

  const auto health = lake.fsck_day(day);
  EXPECT_FALSE(health.healthy());
  EXPECT_EQ(health.records_lost, records.size());
  const auto report = lake.repair_day(day);
  EXPECT_TRUE(report.repaired);
  EXPECT_FALSE(fs::is_empty(dir.path / "quarantine"));
  EXPECT_TRUE(lake.fsck_day(day).healthy());
}

namespace {

/// Oracle for the projection contract: starting from a value-initialized
/// record, copy in the always-decoded filter columns (first_packet, proto,
/// server_ip) plus exactly the fields `mask` requests — mirroring what a
/// projected v3 scan promises to materialize. `full` must come from an
/// unprojected scan of the same lake, so codec-level rounding (RTT
/// averages) cancels out and every field compares exactly.
FlowRecord project_oracle(const FlowRecord& full, std::uint32_t mask) {
  namespace sf = ew::storage::scan_fields;
  const auto want = [mask](std::uint32_t b) { return (mask & b) != 0; };
  FlowRecord out;
  out.first_packet = full.first_packet;
  out.proto = full.proto;
  out.server_ip = full.server_ip;
  if (want(sf::kLastPacket)) out.last_packet = full.last_packet;
  if (want(sf::kClientIp)) out.client_ip = full.client_ip;
  if (want(sf::kClientPort)) out.client_port = full.client_port;
  if (want(sf::kServerPort)) out.server_port = full.server_port;
  if (want(sf::kAccess)) out.access = full.access;
  if (want(sf::kCloseState)) {
    out.handshake_completed = full.handshake_completed;
    out.close_reason = full.close_reason;
  }
  if (want(sf::kUpPackets)) out.up.packets = full.up.packets;
  if (want(sf::kUpBytes)) out.up.bytes = full.up.bytes;
  if (want(sf::kUpWireBytes)) out.up.bytes_with_hdr = full.up.bytes_with_hdr;
  if (want(sf::kUpQuality)) {
    out.up.retransmits = full.up.retransmits;
    out.up.out_of_order = full.up.out_of_order;
  }
  if (want(sf::kDownPackets)) out.down.packets = full.down.packets;
  if (want(sf::kDownBytes)) out.down.bytes = full.down.bytes;
  if (want(sf::kDownWireBytes)) out.down.bytes_with_hdr = full.down.bytes_with_hdr;
  if (want(sf::kDownQuality)) {
    out.down.retransmits = full.down.retransmits;
    out.down.out_of_order = full.down.out_of_order;
  }
  if (want(sf::kRttMin | sf::kRttSpread)) {
    out.rtt.samples = full.rtt.samples;
    out.rtt.min_us = full.rtt.min_us;
  }
  if (want(sf::kRttSpread)) {
    out.rtt.max_us = full.rtt.max_us;
    out.rtt.avg_us = full.rtt.avg_us;
  }
  if (want(sf::kL7)) out.l7 = full.l7;
  if (want(sf::kWeb)) out.web = full.web;
  if (want(sf::kNameSource)) out.name_source = full.name_source;
  if (want(sf::kServerName)) out.server_name = full.server_name;
  if (want(sf::kHttpStatus)) out.http_status = full.http_status;
  if (want(sf::kContentType)) out.content_type = full.content_type;
  return out;
}

/// Field-exhaustive equality (unlike expect_equal, which tracks the lossy
/// row codec): projection compares two decodes of the same v3 bytes, so
/// every field — including RTT average, downstream counters, and
/// ingest_seq — must match bit for bit.
void expect_identical(const FlowRecord& a, const FlowRecord& b) {
  expect_equal(a, b);
  EXPECT_EQ(a.rtt.avg_us, b.rtt.avg_us);
  EXPECT_EQ(a.down.packets, b.down.packets);
  EXPECT_EQ(a.down.bytes_with_hdr, b.down.bytes_with_hdr);
  EXPECT_EQ(a.up.out_of_order, b.up.out_of_order);
  EXPECT_EQ(a.ingest_seq, b.ingest_seq);
}

}  // namespace

TEST(DataLakeV3, ProjectedScanMaterializesExactlyTheRequestedFields) {
  namespace sf = ew::storage::scan_fields;
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 6, 1};
  const auto records = varied_batch(41, 1200, day);
  ASSERT_TRUE(lake.append(day, records).has_value());

  std::vector<FlowRecord> full;
  ASSERT_TRUE(lake.scan_day(day, [&](const FlowRecord& r) { full.push_back(r); }).ok());
  ASSERT_EQ(full.size(), records.size());

  // One preset mask (compile-time-specialized emit loop), one arbitrary
  // mask (generic emit loop), one single-field mask, and the empty
  // projection: each must deliver the oracle exactly.
  const std::uint32_t masks[] = {sf::kDayAggregate,
                                 sf::kUpBytes | sf::kRttSpread | sf::kContentType,
                                 sf::kServerName, 0u};
  for (const std::uint32_t mask : masks) {
    std::vector<FlowRecord> got;
    const auto pred = ew::storage::ScanPredicate::project(mask);
    ASSERT_TRUE(lake.scan_day(day, pred, [&](const FlowRecord& r) { got.push_back(r); }).ok());
    ASSERT_EQ(got.size(), full.size()) << "mask " << mask;
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_identical(got[i], project_oracle(full[i], mask));
    }
  }
}

TEST(DataLakeV3, ProjectionComposesWithRowFilters) {
  namespace sf = ew::storage::scan_fields;
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 6, 2};
  const auto records = varied_batch(42, 1200, day);
  ASSERT_TRUE(lake.append(day, records).has_value());

  std::vector<FlowRecord> full;
  ASSERT_TRUE(lake.scan_day(day, [&](const FlowRecord& r) { full.push_back(r); }).ok());

  auto pred = ew::storage::ScanPredicate::for_proto(ew::core::TransportProto::kUdp);
  pred.fields = sf::kUpBytes | sf::kDownBytes;
  std::vector<FlowRecord> got;
  ASSERT_TRUE(lake.scan_day(day, pred, [&](const FlowRecord& r) { got.push_back(r); }).ok());

  std::vector<FlowRecord> expected;
  for (const auto& r : full) {
    if (r.proto == ew::core::TransportProto::kUdp) {
      expected.push_back(project_oracle(r, pred.fields));
    }
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), full.size());  // the filter actually selects
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_identical(got[i], expected[i]);
}

TEST(DataLakeV2, ProjectionIsANoOpOnRowFormatDays) {
  // Row-format blocks decode whole records; a projected scan of a v2 day
  // must deliver every field fully materialized — consumers must not rely
  // on unprojected fields being zeroed when a lake may contain v2 days.
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  lake.set_write_format(ew::storage::LakeFormat::kV2);
  const CivilDate day{2017, 6, 3};
  const auto records = varied_batch(43, 400, day);
  ASSERT_TRUE(lake.append(day, records).has_value());

  const auto pred = ew::storage::ScanPredicate::project(ew::storage::scan_fields::kUpBytes);
  std::vector<FlowRecord> got;
  ASSERT_TRUE(lake.scan_day(day, pred, [&](const FlowRecord& r) { got.push_back(r); }).ok());
  ASSERT_EQ(got.size(), records.size());
  for (std::size_t i = 0; i < got.size(); ++i) expect_equal(got[i], records[i]);
}
