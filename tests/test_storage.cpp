// Codec round-trips, compressor properties, and data-lake behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/rng.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"
#include "storage/daily_writer.hpp"
#include "storage/datalake.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;
using ew::core::ByteReader;
using ew::core::ByteWriter;
using ew::core::CivilDate;
using ew::core::IPv4Address;
using ew::flow::FlowRecord;

namespace {

FlowRecord sample_record(std::uint64_t seed) {
  ew::core::Xoshiro256 rng{seed};
  FlowRecord r;
  r.client_ip = IPv4Address{static_cast<std::uint32_t>(rng())};
  r.server_ip = IPv4Address{static_cast<std::uint32_t>(rng())};
  r.client_port = static_cast<std::uint16_t>(rng());
  r.server_port = 443;
  r.proto = ew::core::TransportProto::kTcp;
  r.access = (rng() & 1) ? ew::flow::AccessTech::kFtth : ew::flow::AccessTech::kAdsl;
  r.first_packet = ew::core::Timestamp::from_date_time({2016, 5, 4}, 12, 30);
  r.last_packet = r.first_packet + static_cast<std::int64_t>(ew::core::uniform_below(rng, 1e9));
  r.up.packets = ew::core::uniform_below(rng, 10000);
  r.up.bytes = ew::core::uniform_below(rng, 100'000'000);
  r.up.bytes_with_hdr = r.up.bytes + 40 * r.up.packets;
  r.down.packets = ew::core::uniform_below(rng, 10000);
  r.down.bytes = ew::core::uniform_below(rng, 1'000'000'000);
  r.down.bytes_with_hdr = r.down.bytes + 40 * r.down.packets;
  r.handshake_completed = true;
  r.close_reason = ew::flow::FlowCloseReason::kTcpTeardown;
  r.rtt.add(3000 + static_cast<std::int64_t>(ew::core::uniform_below(rng, 1000)));
  r.rtt.add(2500);
  r.up.retransmits = static_cast<std::uint32_t>(ew::core::uniform_below(rng, 20));
  r.down.retransmits = static_cast<std::uint32_t>(ew::core::uniform_below(rng, 50));
  r.down.out_of_order = static_cast<std::uint32_t>(ew::core::uniform_below(rng, 10));
  r.l7 = ew::dpi::L7Protocol::kTls;
  r.web = ew::dpi::WebProtocol::kHttp2;
  r.server_name = "edge-star-mini-shv-01-mxp1.facebook.com";
  r.name_source = ew::flow::NameSource::kTlsSni;
  r.http_status = static_cast<std::uint16_t>(ew::core::uniform_below(rng, 600));
  r.content_type = "application/octet-stream";
  return r;
}

void expect_equal(const FlowRecord& a, const FlowRecord& b) {
  EXPECT_EQ(a.client_ip, b.client_ip);
  EXPECT_EQ(a.server_ip, b.server_ip);
  EXPECT_EQ(a.client_port, b.client_port);
  EXPECT_EQ(a.server_port, b.server_port);
  EXPECT_EQ(a.proto, b.proto);
  EXPECT_EQ(a.access, b.access);
  EXPECT_EQ(a.first_packet, b.first_packet);
  EXPECT_EQ(a.last_packet, b.last_packet);
  EXPECT_EQ(a.up.packets, b.up.packets);
  EXPECT_EQ(a.up.bytes, b.up.bytes);
  EXPECT_EQ(a.up.bytes_with_hdr, b.up.bytes_with_hdr);
  EXPECT_EQ(a.down.bytes, b.down.bytes);
  EXPECT_EQ(a.handshake_completed, b.handshake_completed);
  EXPECT_EQ(a.close_reason, b.close_reason);
  EXPECT_EQ(a.rtt.samples, b.rtt.samples);
  EXPECT_EQ(a.rtt.min_us, b.rtt.min_us);
  EXPECT_EQ(a.rtt.max_us, b.rtt.max_us);
  EXPECT_EQ(a.up.retransmits, b.up.retransmits);
  EXPECT_EQ(a.down.retransmits, b.down.retransmits);
  EXPECT_EQ(a.down.out_of_order, b.down.out_of_order);
  EXPECT_EQ(a.l7, b.l7);
  EXPECT_EQ(a.web, b.web);
  EXPECT_EQ(a.server_name, b.server_name);
  EXPECT_EQ(a.name_source, b.name_source);
  EXPECT_EQ(a.http_status, b.http_status);
  EXPECT_EQ(a.content_type, b.content_type);
}

struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() /
                   ("ewlake_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter()++))) {}
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

}  // namespace

// ------------------------------------------------------------------ varint

TEST(Varint, RoundTripsBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0,   1,    127,        128,
                                  300, 16383, 16384,     0xffffffffull,
                                  0xffffffffffffffffull, 42};
  for (auto v : values) ew::storage::put_varint(w, v);
  ByteReader r{w.view()};
  for (auto v : values) EXPECT_EQ(ew::storage::get_varint(r), v);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Varint, SignedZigZag) {
  ByteWriter w;
  const std::int64_t values[] = {0, -1, 1, -64, 63, -1000000, 1000000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (auto v : values) ew::storage::put_varint_signed(w, v);
  ByteReader r{w.view()};
  for (auto v : values) EXPECT_EQ(ew::storage::get_varint_signed(r), v);
  EXPECT_TRUE(r.ok());
}

TEST(Varint, SmallValuesAreOneByte) {
  ByteWriter w;
  ew::storage::put_varint(w, 127);
  EXPECT_EQ(w.size(), 1u);
  ew::storage::put_varint(w, 128);
  EXPECT_EQ(w.size(), 3u);
}

// ------------------------------------------------------------------ codec

TEST(Codec, RecordRoundTrip) {
  const auto record = sample_record(1);
  ByteWriter w;
  ew::storage::encode_record(record, w);
  ByteReader r{w.view()};
  const auto back = ew::storage::decode_record(r);
  ASSERT_TRUE(back.has_value());
  expect_equal(record, *back);
}

TEST(Codec, ManyRandomRecordsRoundTrip) {
  ByteWriter w;
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 200; ++i) {
    records.push_back(sample_record(i));
    ew::storage::encode_record(records.back(), w);
  }
  ByteReader r{w.view()};
  for (const auto& expected : records) {
    const auto got = ew::storage::decode_record(r);
    ASSERT_TRUE(got.has_value());
    expect_equal(expected, *got);
  }
  EXPECT_FALSE(ew::storage::decode_record(r).has_value());  // clean EOF
}

TEST(Codec, ZeroRttRecordOmitsRttFields) {
  FlowRecord r = sample_record(2);
  r.rtt = {};
  ByteWriter w;
  ew::storage::encode_record(r, w);
  ByteReader reader{w.view()};
  const auto back = ew::storage::decode_record(reader);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rtt.samples, 0u);
}

TEST(Codec, TruncatedInputFailsCleanly) {
  const auto record = sample_record(3);
  ByteWriter w;
  ew::storage::encode_record(record, w);
  for (std::size_t cut = 1; cut < w.size(); cut += 7) {
    ByteReader r{w.view().first(cut)};
    EXPECT_FALSE(ew::storage::decode_record(r).has_value()) << cut;
  }
}

// Parameterized sweep: extreme field values must survive the codec.
class CodecExtremes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecExtremes, RoundTripsExtremeVolumes) {
  FlowRecord r = sample_record(9);
  r.up.bytes = GetParam();
  r.down.bytes = GetParam() / 3;
  r.up.packets = GetParam() / 1000 + 1;
  r.server_name.assign(GetParam() % 200, 'x');
  ByteWriter w;
  ew::storage::encode_record(r, w);
  ByteReader reader{w.view()};
  const auto back = ew::storage::decode_record(reader);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->up.bytes, r.up.bytes);
  EXPECT_EQ(back->server_name, r.server_name);
}

INSTANTIATE_TEST_SUITE_P(VolumeSweep, CodecExtremes,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 65535ull,
                                           1'000'000ull, 0xffffffffull,
                                           0x7fffffffffffffffull));

// -------------------------------------------------------------- compressor

TEST(Compress, RoundTripStructuredData) {
  // Concatenated records: realistic, compressible input.
  ByteWriter w;
  for (std::uint64_t i = 0; i < 500; ++i) ew::storage::encode_record(sample_record(i % 10), w);
  const std::vector<std::byte> input{w.view().begin(), w.view().end()};
  const auto compressed = ew::storage::compress_block(input);
  EXPECT_LT(compressed.size(), input.size() / 2);  // long repeats compress well
  const auto back = ew::storage::decompress_block(compressed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, input);
}

TEST(Compress, RoundTripRandomData) {
  ew::core::Xoshiro256 rng{77};
  std::vector<std::byte> input;
  for (int i = 0; i < 10000; ++i) input.push_back(static_cast<std::byte>(rng() & 0xff));
  const auto compressed = ew::storage::compress_block(input);
  EXPECT_LE(compressed.size(), input.size() + 5);  // stored fallback bound
  const auto back = ew::storage::decompress_block(compressed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, input);
}

TEST(Compress, RoundTripEdgeCases) {
  for (const std::string& s :
       {std::string{}, std::string{"x"}, std::string{"abcd"}, std::string(100000, 'a'),
        std::string{"abcabcabcabcabcabc"}}) {
    const auto input = ew::core::to_bytes(s);
    const auto back = ew::storage::decompress_block(ew::storage::compress_block(input));
    ASSERT_TRUE(back.has_value()) << s.size();
    EXPECT_EQ(*back, input) << s.size();
  }
}

TEST(Compress, RandomInputsPropertyRoundTrip) {
  ew::core::Xoshiro256 rng{123};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::byte> input;
    const auto len = ew::core::uniform_below(rng, 5000);
    // Mix of runs and randomness.
    for (std::uint64_t i = 0; i < len; ++i) {
      input.push_back(static_cast<std::byte>(
          ew::core::chance(rng, 0.7) ? 0xAB : static_cast<std::uint8_t>(rng() & 0xff)));
    }
    const auto back = ew::storage::decompress_block(ew::storage::compress_block(input));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, input);
  }
}

TEST(Compress, RejectsCorruptedHeaders) {
  EXPECT_FALSE(ew::storage::decompress_block({}).has_value());
  const auto input = ew::core::to_bytes("hello world hello world hello world");
  auto compressed = ew::storage::compress_block(input);
  compressed[0] = static_cast<std::byte>(9);  // bogus scheme
  EXPECT_FALSE(ew::storage::decompress_block(compressed).has_value());
}

TEST(Compress, RejectsTruncatedBody) {
  std::vector<std::byte> input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<std::byte>(i % 7));
  auto compressed = ew::storage::compress_block(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(ew::storage::decompress_block(compressed).has_value());
}

// --------------------------------------------------------------- data lake

TEST(DataLake, WriteScanRoundTrip) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 1000; ++i) records.push_back(sample_record(i));
  const CivilDate day{2014, 4, 15};
  const auto bytes = lake.append(day, records);
  EXPECT_GT(bytes, 0u);
  const auto back = lake.read_day(day);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) expect_equal(records[i], back[i]);
}

TEST(DataLake, AppendAccumulates) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2014, 4, 15};
  std::vector<FlowRecord> batch{sample_record(1), sample_record(2)};
  lake.append(day, batch);
  lake.append(day, batch);
  EXPECT_EQ(lake.read_day(day).size(), 4u);
}

TEST(DataLake, DaysAreSortedAndDiscoverable) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  std::vector<FlowRecord> batch{sample_record(1)};
  lake.append({2017, 4, 2}, batch);
  lake.append({2013, 3, 1}, batch);
  lake.append({2014, 12, 25}, batch);
  const auto days = lake.days();
  ASSERT_EQ(days.size(), 3u);
  EXPECT_EQ(days[0], (CivilDate{2013, 3, 1}));
  EXPECT_EQ(days[2], (CivilDate{2017, 4, 2}));
  EXPECT_TRUE(lake.has_day({2014, 12, 25}));
  EXPECT_FALSE(lake.has_day({2015, 1, 1}));
}

TEST(DataLake, MissingDayScanReturnsFalse) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  int count = 0;
  EXPECT_FALSE(lake.scan_day({2015, 6, 1}, [&](const FlowRecord&) { ++count; }));
  EXPECT_EQ(count, 0);
}

TEST(DataLake, CorruptFileDetected) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 1, 1};
  std::vector<FlowRecord> batch{sample_record(5)};
  lake.append(day, batch);
  // Flip bytes in the middle of the file.
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  auto contents = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }();
  contents[contents.size() / 2] ^= 0x5A;
  contents[contents.size() / 2 + 1] ^= 0x5A;
  std::ofstream(path, std::ios::binary) << contents;
  int count = 0;
  EXPECT_FALSE(lake.scan_day(day, [&](const FlowRecord&) { ++count; }));
}

TEST(DataLake, CompressionShrinksTypicalLogs) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2016, 2, 2};
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 5000; ++i) records.push_back(sample_record(i % 50));
  lake.append(day, records);
  ByteWriter raw;
  for (const auto& r : records) ew::storage::encode_record(r, raw);
  EXPECT_LT(lake.file_bytes(day), raw.size());
}

TEST(DailyLakeWriter, RoutesRecordsToTheirDays) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  {
    ew::storage::DailyLakeWriter writer{lake, 4};
    for (int d = 0; d < 3; ++d) {
      for (int i = 0; i < 5; ++i) {
        auto r = sample_record(static_cast<std::uint64_t>(d * 10 + i));
        r.first_packet =
            ew::core::Timestamp::from_date_time({2016, 5, static_cast<std::uint8_t>(4 + d)}, 10);
        r.last_packet = r.first_packet + 1'000'000;
        writer.add(std::move(r));
      }
    }
    EXPECT_GT(writer.records_written(), 0u);  // 4-record buffers already flushed
  }  // destructor flushes the rest
  EXPECT_EQ(lake.read_day({2016, 5, 4}).size(), 5u);
  EXPECT_EQ(lake.read_day({2016, 5, 5}).size(), 5u);
  EXPECT_EQ(lake.read_day({2016, 5, 6}).size(), 5u);
  EXPECT_EQ(lake.days().size(), 3u);
}

TEST(DailyLakeWriter, MidnightRollover) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  ew::storage::DailyLakeWriter writer{lake};
  // A flow starting at 23:59:59 belongs to its start day even if it ends
  // the next day.
  auto r = sample_record(1);
  r.first_packet = ew::core::Timestamp::from_date_time({2016, 5, 4}, 23, 59, 59);
  r.last_packet = r.first_packet + 10'000'000;  // crosses midnight
  writer.add(std::move(r));
  writer.finish();
  EXPECT_EQ(lake.read_day({2016, 5, 4}).size(), 1u);
  EXPECT_FALSE(lake.has_day({2016, 5, 5}));
}

TEST(DataLake, CsvExportWritesHeaderAndRows) {
  TempDir dir;
  ew::storage::DataLake lake{dir.path};
  const CivilDate day{2017, 7, 7};
  std::vector<FlowRecord> records{sample_record(1), sample_record(2), sample_record(3)};
  lake.append(day, records);
  const auto csv_path = dir.path / "out.csv";
  EXPECT_EQ(lake.export_csv(day, csv_path), 3u);
  std::ifstream in(csv_path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, ew::storage::csv_header());
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}
