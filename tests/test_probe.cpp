// End-to-end probe tests: packets in, anonymized/named/classified flow
// records out; DN-Hunter integration; outages; software upgrades;
// checkpoint/restore across a planned restart.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <tuple>

#include "dns/message.hpp"
#include "dpi/parsers.hpp"
#include "net/packet.hpp"
#include "probe/probe.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;
using ew::flow::FlowRecord;
using ew::net::PacketBuilder;
using ew::net::TcpFlags;
using ew::probe::Probe;
using ew::probe::ProbeConfig;

namespace {

constexpr IPv4Address kAdslClient{10, 0, 3, 7};     // inside 10.0.0.0/8, not FTTH half
constexpr IPv4Address kFtthClient{10, 200, 1, 2};   // inside 10.128.0.0/9
constexpr IPv4Address kServer{31, 13, 86, 36};
constexpr IPv4Address kResolver{10, 255, 255, 53};

struct ProbeHarness {
  std::vector<FlowRecord> records;
  Probe probe;

  explicit ProbeHarness(ProbeConfig cfg = {})
      : probe(cfg, [this](FlowRecord&& r) { records.push_back(std::move(r)); }) {}

  void dns_reply(IPv4Address client, const char* name, IPv4Address addr, std::int64_t at_us) {
    const IPv4Address addrs[] = {addr};
    const auto msg = ew::dns::make_a_response(42, name, addrs);
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us})
                      .ip(kResolver, client)
                      .udp(53, 40053)
                      .payload(ew::dns::serialize(msg))
                      .build());
  }

  void tls_flow(IPv4Address client, std::uint16_t cport, std::string_view sni,
                std::int64_t at_us, std::size_t down_bytes = 2000) {
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us})
                      .ip(client, kServer)
                      .tcp(cport, 443, 1, 0, TcpFlags::kSyn)
                      .build());
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us + 3000})
                      .ip(kServer, client)
                      .tcp(443, cport, 100, 2, TcpFlags::kSyn | TcpFlags::kAck)
                      .build());
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us + 3100})
                      .ip(client, kServer)
                      .tcp(cport, 443, 2, 101, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload(ew::dpi::build_client_hello(sni, {}))
                      .build());
    std::vector<std::byte> body(down_bytes, std::byte{0x77});
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us + 6000})
                      .ip(kServer, client)
                      .tcp(443, cport, 101, 600, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload(std::move(body))
                      .build());
  }
};

}  // namespace

TEST(Probe, AnonymizesCustomerKeepsServer) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "www.facebook.com", 1'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  const auto& r = h.records[0];
  EXPECT_NE(r.client_ip, kAdslClient);           // anonymized
  EXPECT_EQ(r.server_ip, kServer);               // untouched
  EXPECT_EQ(r.server_name, "www.facebook.com");  // SNI
  EXPECT_EQ(r.name_source, ew::flow::NameSource::kTlsSni);
}

TEST(Probe, AnonymizationConsistentAcrossFlows) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44001, "a.example", 1'000'000);
  h.tls_flow(kAdslClient, 44002, "b.example", 2'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  EXPECT_EQ(h.records[0].client_ip, h.records[1].client_ip);
}

TEST(Probe, AccessTechFromPrefix) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "x.example", 1'000'000);
  h.tls_flow(kFtthClient, 44000, "x.example", 2'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  // Export order is not defined; check the multiset of labels.
  int adsl = 0, ftth = 0;
  for (const auto& r : h.records) {
    adsl += r.access == ew::flow::AccessTech::kAdsl;
    ftth += r.access == ew::flow::AccessTech::kFtth;
  }
  EXPECT_EQ(adsl, 1);
  EXPECT_EQ(ftth, 1);
}

TEST(Probe, DnHunterNamesSniLessFlows) {
  ProbeHarness h;
  h.dns_reply(kAdslClient, "api.whatsapp.net", kServer, 500'000);
  // Open a raw TCP flow with no TLS/HTTP payload: only DNS can name it.
  h.probe.process(PacketBuilder{}
                      .ts(Timestamp{600'000})
                      .ip(kAdslClient, kServer)
                      .tcp(45000, 5222, 1, 0, TcpFlags::kSyn)
                      .build());
  h.probe.process(PacketBuilder{}
                      .ts(Timestamp{610'000})
                      .ip(kAdslClient, kServer)
                      .tcp(45000, 5222, 2, 0, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload("\x01\x02\x03 opaque app bytes")
                      .build());
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);  // DNS flow + app flow
  // Export order is not defined; the app flow is the TCP one.
  const auto* app = &h.records[0];
  if (app->proto != ew::core::TransportProto::kTcp) app = &h.records[1];
  EXPECT_EQ(app->server_name, "api.whatsapp.net");
  EXPECT_EQ(app->name_source, ew::flow::NameSource::kDnsHunter);
  EXPECT_EQ(h.probe.counters().records_named_by_dns, 1u);
}

TEST(Probe, SniBeatsDnHunter) {
  ProbeHarness h;
  h.dns_reply(kAdslClient, "cdn.fbcdn.net", kServer, 500'000);
  h.tls_flow(kAdslClient, 44100, "www.instagram.com", 600'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  const auto* app = &h.records[0];
  if (app->proto != ew::core::TransportProto::kTcp) app = &h.records[1];
  EXPECT_EQ(app->server_name, "www.instagram.com");
  EXPECT_EQ(app->name_source, ew::flow::NameSource::kTlsSni);
}

TEST(Probe, DnsFlowItselfIsRecorded) {
  ProbeHarness h;
  // The query opens the flow (customer is the initiator, as on real links),
  // the response follows on the reverse path.
  const IPv4Address addrs[] = {kServer};
  auto query = ew::dns::make_a_response(42, "x.com", addrs);
  query.is_response = false;
  query.answers.clear();
  h.probe.process(PacketBuilder{}
                      .ts(Timestamp{50})
                      .ip(kAdslClient, kResolver)
                      .udp(40053, 53)
                      .payload(ew::dns::serialize(query))
                      .build());
  h.dns_reply(kAdslClient, "x.com", kServer, 100);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].proto, ew::core::TransportProto::kUdp);
  EXPECT_EQ(h.records[0].server_port, 53);
  EXPECT_EQ(h.records[0].l7, ew::dpi::L7Protocol::kDns);
  EXPECT_EQ(h.records[0].up.packets, 1u);
  EXPECT_EQ(h.records[0].down.packets, 1u);
}

TEST(Probe, OutageDropsTrafficAndState) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "lost.example", 1'000'000);
  h.probe.begin_outage();  // flow above is lost, not exported
  EXPECT_EQ(h.records.size(), 0u);
  h.tls_flow(kAdslClient, 44001, "alsolost.example", 2'000'000);
  EXPECT_GT(h.probe.counters().dropped_offline, 0u);
  h.probe.end_outage();
  h.tls_flow(kAdslClient, 44002, "seen.example", 3'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].server_name, "seen.example");
  EXPECT_EQ(h.probe.counters().records_exported, 1u);
}

TEST(Probe, ClassifierUpgradeChangesLabels) {
  ProbeHarness h;
  ew::dpi::ClassifierOptions legacy;
  legacy.report_spdy = false;
  h.probe.set_classifier_options(legacy);

  auto spdy_flow = [&](std::uint16_t port, std::int64_t at) {
    const std::string alpn[] = {"spdy/3.1"};
    h.probe.process(PacketBuilder{}
                        .ts(Timestamp{at})
                        .ip(kAdslClient, kServer)
                        .tcp(port, 443, 1, 0, TcpFlags::kAck | TcpFlags::kPsh)
                        .payload(ew::dpi::build_client_hello("www.google.com", alpn))
                        .build());
  };
  spdy_flow(46000, 1'000'000);
  h.probe.set_classifier_options(ew::dpi::ClassifierOptions{});  // upgrade (event C)
  spdy_flow(46001, 2'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  int spdy = 0, tls = 0;
  for (const auto& r : h.records) {
    spdy += r.web == ew::dpi::WebProtocol::kSpdy;
    tls += r.web == ew::dpi::WebProtocol::kTls;
  }
  EXPECT_EQ(spdy, 1);
  EXPECT_EQ(tls, 1);
}

TEST(Probe, MalformedFramesCountedNotFatal) {
  ProbeHarness h;
  ew::net::Frame garbage;
  garbage.data = ew::core::to_bytes("too short");
  h.probe.process(garbage);
  EXPECT_EQ(h.probe.counters().decode_failures, 1u);
  h.tls_flow(kAdslClient, 44000, "ok.example", 1'000'000);
  h.probe.finish();
  EXPECT_EQ(h.records.size(), 1u);
}

TEST(Probe, Ipv6FramesCountedNotTracked) {
  ProbeHarness h;
  // Minimal Ethernet frame with ethertype 0x86dd and a stub body.
  ew::net::Frame v6;
  v6.data.resize(40, std::byte{0});
  v6.data[12] = std::byte{0x86};
  v6.data[13] = std::byte{0xdd};
  h.probe.process(v6);
  EXPECT_EQ(h.probe.counters().ipv6_frames, 1u);
  EXPECT_EQ(h.probe.counters().decode_failures, 0u);
  h.probe.finish();
  EXPECT_TRUE(h.records.empty());
}

TEST(Probe, SamplingDropsDeterministically) {
  ew::probe::ProbeConfig cfg;
  cfg.sample_rate = 10;
  ProbeHarness h{cfg};
  for (int i = 0; i < 100; ++i) {
    h.probe.process(PacketBuilder{}
                        .ts(Timestamp{i * 1000})
                        .ip(kAdslClient, kServer)
                        .udp(41000, 443)
                        .payload("x")
                        .build());
  }
  EXPECT_EQ(h.probe.counters().sampled_out, 90u);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.packets, 10u);  // 1-in-10 packets survived
}

TEST(Probe, RttMeasuredThroughProbe) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "rtt.example", 1'000'000);  // 3 ms SYN-ACK delay
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  ASSERT_GT(h.records[0].rtt.samples, 0u);
  EXPECT_NEAR(h.records[0].rtt.min_ms(), 2.9, 0.5);
}

// -------------------------------------------------- checkpoint / restore

namespace {

struct TempCheckpoint {
  std::filesystem::path path;
  TempCheckpoint()
      : path(std::filesystem::temp_directory_path() /
             ("ewckpt_" + std::to_string(::getpid()) + "_" + std::to_string(counter()++))) {}
  ~TempCheckpoint() { std::filesystem::remove(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

}  // namespace

TEST(ProbeCheckpoint, ResumesMidFlowAcrossRestart) {
  TempCheckpoint ckpt;

  // Before the restart: a DNS resolution and the first half of a TCP
  // handshake. Both live only in probe state at this point.
  ProbeHarness a;
  a.dns_reply(kAdslClient, "api.whatsapp.net", kServer, 500'000);
  a.probe.process(PacketBuilder{}
                      .ts(Timestamp{600'000})
                      .ip(kAdslClient, kServer)
                      .tcp(45000, 5222, 1, 0, TcpFlags::kSyn)
                      .build());
  const auto saved = a.probe.save_checkpoint(ckpt.path);
  ASSERT_TRUE(saved.has_value());
  EXPECT_GT(*saved, 0u);
  EXPECT_TRUE(a.records.empty());

  // After the restart: a fresh probe with the same config resumes.
  ProbeHarness b;
  ASSERT_TRUE(b.probe.restore_checkpoint(ckpt.path).ok());
  b.probe.process(PacketBuilder{}
                      .ts(Timestamp{603'000})
                      .ip(kServer, kAdslClient)
                      .tcp(5222, 45000, 100, 2, TcpFlags::kSyn | TcpFlags::kAck)
                      .build());
  b.probe.process(PacketBuilder{}
                      .ts(Timestamp{610'000})
                      .ip(kAdslClient, kServer)
                      .tcp(45000, 5222, 2, 101, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload("\x01\x02\x03 opaque app bytes")
                      .build());
  b.probe.finish();

  // DNS flow + app flow, exactly as an uninterrupted probe would export
  // (export order is not defined — find the app flow by port).
  ASSERT_EQ(b.records.size(), 2u);
  const auto* app = &b.records[0];
  if (app->server_port != 5222) app = &b.records[1];
  ASSERT_EQ(app->server_port, 5222);
  // The DN-Hunter hint attached before the restart survived it.
  EXPECT_EQ(app->server_name, "api.whatsapp.net");
  EXPECT_EQ(app->name_source, ew::flow::NameSource::kDnsHunter);
  // The SYN was tracked pre-restart, the SYN-ACK matched post-restart:
  // the RTT estimator's outstanding queue crossed the checkpoint intact.
  EXPECT_TRUE(app->handshake_completed);
  ASSERT_GT(app->rtt.samples, 0u);
  EXPECT_NEAR(app->rtt.min_ms(), 3.0, 0.5);
  // Counters are cumulative across the restart.
  EXPECT_GE(b.probe.counters().frames, a.probe.counters().frames);
  EXPECT_EQ(b.probe.counters().dns_responses, 1u);
}

TEST(ProbeCheckpoint, MatchesUninterruptedRun) {
  TempCheckpoint ckpt;

  ProbeHarness uninterrupted;
  uninterrupted.dns_reply(kAdslClient, "cdn.example.net", kServer, 100'000);
  uninterrupted.tls_flow(kAdslClient, 44100, "www.instagram.com", 600'000);
  uninterrupted.probe.finish();

  ProbeHarness first;
  first.dns_reply(kAdslClient, "cdn.example.net", kServer, 100'000);
  ASSERT_TRUE(first.probe.save_checkpoint(ckpt.path).has_value());
  ProbeHarness second;
  ASSERT_TRUE(second.probe.restore_checkpoint(ckpt.path).ok());
  second.tls_flow(kAdslClient, 44100, "www.instagram.com", 600'000);
  second.probe.finish();

  ASSERT_EQ(second.records.size(), uninterrupted.records.size());
  const auto by_port = [](const FlowRecord& a, const FlowRecord& b) {
    return std::tie(a.server_port, a.client_port) < std::tie(b.server_port, b.client_port);
  };
  std::sort(second.records.begin(), second.records.end(), by_port);
  std::sort(uninterrupted.records.begin(), uninterrupted.records.end(), by_port);
  for (std::size_t i = 0; i < second.records.size(); ++i) {
    EXPECT_EQ(second.records[i].server_name, uninterrupted.records[i].server_name);
    EXPECT_EQ(second.records[i].client_ip, uninterrupted.records[i].client_ip);
    EXPECT_EQ(second.records[i].up.bytes, uninterrupted.records[i].up.bytes);
    EXPECT_EQ(second.records[i].down.bytes, uninterrupted.records[i].down.bytes);
  }
  EXPECT_EQ(second.probe.counters().records_exported,
            uninterrupted.probe.counters().records_exported);
  EXPECT_EQ(second.probe.dnhunter().size(), uninterrupted.probe.dnhunter().size());
}

TEST(ProbeCheckpoint, RejectsDamagedFiles) {
  TempCheckpoint ckpt;
  ProbeHarness a;
  a.dns_reply(kAdslClient, "x.example", kServer, 100);
  a.tls_flow(kAdslClient, 44000, "y.example", 1'000'000);
  ASSERT_TRUE(a.probe.save_checkpoint(ckpt.path).has_value());

  ProbeHarness b;
  EXPECT_EQ(b.probe.restore_checkpoint("/nonexistent/probe.ckpt").error(),
            ew::core::Errc::kNotFound);

  // Flip one payload bit: the CRC must catch it.
  auto contents = [&] {
    std::ifstream in(ckpt.path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }();
  auto corrupt = contents;
  corrupt[contents.size() - 5] ^= 0x04;
  std::ofstream(ckpt.path, std::ios::binary | std::ios::trunc) << corrupt;
  EXPECT_EQ(b.probe.restore_checkpoint(ckpt.path).error(), ew::core::Errc::kCorrupt);

  // A truncated file and a foreign file are told apart too.
  std::ofstream(ckpt.path, std::ios::binary | std::ios::trunc) << contents.substr(0, 9);
  EXPECT_EQ(b.probe.restore_checkpoint(ckpt.path).error(), ew::core::Errc::kTruncated);
  std::ofstream(ckpt.path, std::ios::binary | std::ios::trunc) << "GIF89a definitely not it";
  EXPECT_EQ(b.probe.restore_checkpoint(ckpt.path).error(), ew::core::Errc::kBadMagic);

  // After the failed restores the probe is empty but fully functional.
  EXPECT_EQ(b.probe.table().active_flows(), 0u);
  b.tls_flow(kAdslClient, 44001, "fresh.example", 2'000'000);
  b.probe.finish();
  ASSERT_EQ(b.records.size(), 1u);
  EXPECT_EQ(b.records[0].server_name, "fresh.example");
}
