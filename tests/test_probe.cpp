// End-to-end probe tests: packets in, anonymized/named/classified flow
// records out; DN-Hunter integration; outages; software upgrades.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "dpi/parsers.hpp"
#include "net/packet.hpp"
#include "probe/probe.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;
using ew::flow::FlowRecord;
using ew::net::PacketBuilder;
using ew::net::TcpFlags;
using ew::probe::Probe;
using ew::probe::ProbeConfig;

namespace {

constexpr IPv4Address kAdslClient{10, 0, 3, 7};     // inside 10.0.0.0/8, not FTTH half
constexpr IPv4Address kFtthClient{10, 200, 1, 2};   // inside 10.128.0.0/9
constexpr IPv4Address kServer{31, 13, 86, 36};
constexpr IPv4Address kResolver{10, 255, 255, 53};

struct ProbeHarness {
  std::vector<FlowRecord> records;
  Probe probe;

  explicit ProbeHarness(ProbeConfig cfg = {})
      : probe(cfg, [this](FlowRecord&& r) { records.push_back(std::move(r)); }) {}

  void dns_reply(IPv4Address client, const char* name, IPv4Address addr, std::int64_t at_us) {
    const IPv4Address addrs[] = {addr};
    const auto msg = ew::dns::make_a_response(42, name, addrs);
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us})
                      .ip(kResolver, client)
                      .udp(53, 40053)
                      .payload(ew::dns::serialize(msg))
                      .build());
  }

  void tls_flow(IPv4Address client, std::uint16_t cport, std::string_view sni,
                std::int64_t at_us, std::size_t down_bytes = 2000) {
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us})
                      .ip(client, kServer)
                      .tcp(cport, 443, 1, 0, TcpFlags::kSyn)
                      .build());
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us + 3000})
                      .ip(kServer, client)
                      .tcp(443, cport, 100, 2, TcpFlags::kSyn | TcpFlags::kAck)
                      .build());
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us + 3100})
                      .ip(client, kServer)
                      .tcp(cport, 443, 2, 101, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload(ew::dpi::build_client_hello(sni, {}))
                      .build());
    std::vector<std::byte> body(down_bytes, std::byte{0x77});
    probe.process(PacketBuilder{}
                      .ts(Timestamp{at_us + 6000})
                      .ip(kServer, client)
                      .tcp(443, cport, 101, 600, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload(std::move(body))
                      .build());
  }
};

}  // namespace

TEST(Probe, AnonymizesCustomerKeepsServer) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "www.facebook.com", 1'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  const auto& r = h.records[0];
  EXPECT_NE(r.client_ip, kAdslClient);           // anonymized
  EXPECT_EQ(r.server_ip, kServer);               // untouched
  EXPECT_EQ(r.server_name, "www.facebook.com");  // SNI
  EXPECT_EQ(r.name_source, ew::flow::NameSource::kTlsSni);
}

TEST(Probe, AnonymizationConsistentAcrossFlows) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44001, "a.example", 1'000'000);
  h.tls_flow(kAdslClient, 44002, "b.example", 2'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  EXPECT_EQ(h.records[0].client_ip, h.records[1].client_ip);
}

TEST(Probe, AccessTechFromPrefix) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "x.example", 1'000'000);
  h.tls_flow(kFtthClient, 44000, "x.example", 2'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  // Export order is not defined; check the multiset of labels.
  int adsl = 0, ftth = 0;
  for (const auto& r : h.records) {
    adsl += r.access == ew::flow::AccessTech::kAdsl;
    ftth += r.access == ew::flow::AccessTech::kFtth;
  }
  EXPECT_EQ(adsl, 1);
  EXPECT_EQ(ftth, 1);
}

TEST(Probe, DnHunterNamesSniLessFlows) {
  ProbeHarness h;
  h.dns_reply(kAdslClient, "api.whatsapp.net", kServer, 500'000);
  // Open a raw TCP flow with no TLS/HTTP payload: only DNS can name it.
  h.probe.process(PacketBuilder{}
                      .ts(Timestamp{600'000})
                      .ip(kAdslClient, kServer)
                      .tcp(45000, 5222, 1, 0, TcpFlags::kSyn)
                      .build());
  h.probe.process(PacketBuilder{}
                      .ts(Timestamp{610'000})
                      .ip(kAdslClient, kServer)
                      .tcp(45000, 5222, 2, 0, TcpFlags::kAck | TcpFlags::kPsh)
                      .payload("\x01\x02\x03 opaque app bytes")
                      .build());
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);  // DNS flow + app flow
  const auto* app = &h.records[0];
  if (app->server_port == 53) app = &h.records[1];
  EXPECT_EQ(app->server_name, "api.whatsapp.net");
  EXPECT_EQ(app->name_source, ew::flow::NameSource::kDnsHunter);
  EXPECT_EQ(h.probe.counters().records_named_by_dns, 1u);
}

TEST(Probe, SniBeatsDnHunter) {
  ProbeHarness h;
  h.dns_reply(kAdslClient, "cdn.fbcdn.net", kServer, 500'000);
  h.tls_flow(kAdslClient, 44100, "www.instagram.com", 600'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  const auto* app = &h.records[0];
  if (app->server_port == 53) app = &h.records[1];
  EXPECT_EQ(app->server_name, "www.instagram.com");
  EXPECT_EQ(app->name_source, ew::flow::NameSource::kTlsSni);
}

TEST(Probe, DnsFlowItselfIsRecorded) {
  ProbeHarness h;
  // The query opens the flow (customer is the initiator, as on real links),
  // the response follows on the reverse path.
  const IPv4Address addrs[] = {kServer};
  auto query = ew::dns::make_a_response(42, "x.com", addrs);
  query.is_response = false;
  query.answers.clear();
  h.probe.process(PacketBuilder{}
                      .ts(Timestamp{50})
                      .ip(kAdslClient, kResolver)
                      .udp(40053, 53)
                      .payload(ew::dns::serialize(query))
                      .build());
  h.dns_reply(kAdslClient, "x.com", kServer, 100);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].proto, ew::core::TransportProto::kUdp);
  EXPECT_EQ(h.records[0].server_port, 53);
  EXPECT_EQ(h.records[0].l7, ew::dpi::L7Protocol::kDns);
  EXPECT_EQ(h.records[0].up.packets, 1u);
  EXPECT_EQ(h.records[0].down.packets, 1u);
}

TEST(Probe, OutageDropsTrafficAndState) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "lost.example", 1'000'000);
  h.probe.begin_outage();  // flow above is lost, not exported
  EXPECT_EQ(h.records.size(), 0u);
  h.tls_flow(kAdslClient, 44001, "alsolost.example", 2'000'000);
  EXPECT_GT(h.probe.counters().dropped_offline, 0u);
  h.probe.end_outage();
  h.tls_flow(kAdslClient, 44002, "seen.example", 3'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].server_name, "seen.example");
  EXPECT_EQ(h.probe.counters().records_exported, 1u);
}

TEST(Probe, ClassifierUpgradeChangesLabels) {
  ProbeHarness h;
  ew::dpi::ClassifierOptions legacy;
  legacy.report_spdy = false;
  h.probe.set_classifier_options(legacy);

  auto spdy_flow = [&](std::uint16_t port, std::int64_t at) {
    const std::string alpn[] = {"spdy/3.1"};
    h.probe.process(PacketBuilder{}
                        .ts(Timestamp{at})
                        .ip(kAdslClient, kServer)
                        .tcp(port, 443, 1, 0, TcpFlags::kAck | TcpFlags::kPsh)
                        .payload(ew::dpi::build_client_hello("www.google.com", alpn))
                        .build());
  };
  spdy_flow(46000, 1'000'000);
  h.probe.set_classifier_options(ew::dpi::ClassifierOptions{});  // upgrade (event C)
  spdy_flow(46001, 2'000'000);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 2u);
  int spdy = 0, tls = 0;
  for (const auto& r : h.records) {
    spdy += r.web == ew::dpi::WebProtocol::kSpdy;
    tls += r.web == ew::dpi::WebProtocol::kTls;
  }
  EXPECT_EQ(spdy, 1);
  EXPECT_EQ(tls, 1);
}

TEST(Probe, MalformedFramesCountedNotFatal) {
  ProbeHarness h;
  ew::net::Frame garbage;
  garbage.data = ew::core::to_bytes("too short");
  h.probe.process(garbage);
  EXPECT_EQ(h.probe.counters().decode_failures, 1u);
  h.tls_flow(kAdslClient, 44000, "ok.example", 1'000'000);
  h.probe.finish();
  EXPECT_EQ(h.records.size(), 1u);
}

TEST(Probe, Ipv6FramesCountedNotTracked) {
  ProbeHarness h;
  // Minimal Ethernet frame with ethertype 0x86dd and a stub body.
  ew::net::Frame v6;
  v6.data.resize(40, std::byte{0});
  v6.data[12] = std::byte{0x86};
  v6.data[13] = std::byte{0xdd};
  h.probe.process(v6);
  EXPECT_EQ(h.probe.counters().ipv6_frames, 1u);
  EXPECT_EQ(h.probe.counters().decode_failures, 0u);
  h.probe.finish();
  EXPECT_TRUE(h.records.empty());
}

TEST(Probe, SamplingDropsDeterministically) {
  ew::probe::ProbeConfig cfg;
  cfg.sample_rate = 10;
  ProbeHarness h{cfg};
  for (int i = 0; i < 100; ++i) {
    h.probe.process(PacketBuilder{}
                        .ts(Timestamp{i * 1000})
                        .ip(kAdslClient, kServer)
                        .udp(41000, 443)
                        .payload("x")
                        .build());
  }
  EXPECT_EQ(h.probe.counters().sampled_out, 90u);
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.packets, 10u);  // 1-in-10 packets survived
}

TEST(Probe, RttMeasuredThroughProbe) {
  ProbeHarness h;
  h.tls_flow(kAdslClient, 44000, "rtt.example", 1'000'000);  // 3 ms SYN-ACK delay
  h.probe.finish();
  ASSERT_EQ(h.records.size(), 1u);
  ASSERT_GT(h.records[0].rtt.samples, 0u);
  EXPECT_NEAR(h.records[0].rtt.min_ms(), 2.9, 0.5);
}
