// The parallel execution engine: ThreadPool and SPSC ring semantics under
// contention, ShardedProbe's golden determinism guarantee (merged export
// stream byte-identical for every shard count, and to the serial probe),
// and the block/day-parallel stage-one analytics reproducing the serial
// aggregates exactly. Run under TSan via `SANITIZE=tsan scripts/tier1.sh`.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analytics/parallel.hpp"
#include "core/bytes.hpp"
#include "core/spsc_queue.hpp"
#include "core/thread_pool.hpp"
#include "probe/sharded_probe.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::SpscQueue;
using ew::core::ThreadPool;
using ew::core::Timestamp;
using ew::flow::FlowRecord;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionTravelsThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversRangeAndRethrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 63) throw std::runtime_error("bad chunk");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    pool.shutdown();
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ParallelForFailureLeavesWorkersAlive) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for(0, 256, [](std::size_t) { throw std::runtime_error("boom"); }),
        std::runtime_error);
    // Every worker survived the storm of exceptions: the pool still does work.
    EXPECT_EQ(pool.submit([] { return 11; }).get(), 11);
  }
  // submit()ed exceptions are captured by futures, never loose in a worker.
  EXPECT_EQ(pool.stray_exceptions(), 0u);
}

TEST(ThreadPool, ParallelForDrainsOtherChunksBeforeRethrow) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::atomic<std::size_t> executed{0};
  try {
    pool.parallel_for(0, n, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first chunk dies");
      executed.fetch_add(1);
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error&) {
  }
  // The rethrow happened only after every other chunk ran to completion —
  // no in-flight chunk was abandoned holding a reference to fn. Only the
  // throwing chunk's tail (at most one chunk) is missing.
  const std::size_t chunk = (n + 4 * 4 - 1) / (4 * 4);
  EXPECT_GE(executed.load(), n - chunk);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ParallelForAfterShutdownThrowsInsteadOfHanging) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(pool.parallel_for(0, 100, [&](std::size_t) { executed.fetch_add(1); }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ThreadPool, ShutdownWakesBlockedSubmitter) {
  ThreadPool pool(1, /*max_pending=*/1);
  std::promise<void> gate;
  std::promise<void> started;
  pool.submit([&] {
    started.set_value();
    gate.get_future().wait();
  });
  started.get_future().wait();
  pool.submit([] {});  // fills the bounded queue

  std::atomic<bool> threw{false};
  std::thread submitter([&] {
    try {
      pool.submit([] {});  // blocks on backpressure until shutdown
    } catch (const std::runtime_error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread closer([&] { pool.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.set_value();  // let the worker drain so shutdown can finish
  submitter.join();
  closer.join();
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPool, BackpressureBoundsQueue) {
  ThreadPool pool(1, /*max_pending=*/2);
  std::promise<void> gate;
  std::promise<void> started;
  pool.submit([&] {
    started.set_value();
    gate.get_future().wait();
  });
  started.get_future().wait();
  std::atomic<int> submitted{0};
  std::thread feeder([&] {
    for (int i = 0; i < 16; ++i) {
      pool.submit([] {});
      submitted.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // With the worker parked, at most max_pending submissions can complete.
  EXPECT_LE(submitted.load(), 2);
  EXPECT_LE(pool.pending(), 2u);
  gate.set_value();
  feeder.join();
  EXPECT_EQ(submitted.load(), 16);
}

// -------------------------------------------------------------- SpscQueue

TEST(SpscQueue, FifoAcrossThreads) {
  SpscQueue<int> q(8);
  constexpr int kN = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) q.push(int{i});
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kN);
}

TEST(SpscQueue, BlockingPushResumesWhenConsumerDrains) {
  SpscQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(3);  // blocks until a slot frees
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(SpscQueue, CloseWakesBlockedConsumer) {
  SpscQueue<int> q(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());  // blocks, then sees close
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(SpscQueue, CloseDeliversBufferedItemsFirst) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.push(int{i});
  q.close();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, StressSumSurvivesTinyCapacity) {
  SpscQueue<std::uint64_t> q(2);
  constexpr std::uint64_t kN = 50000;
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kN; ++i) q.push(std::uint64_t{i});
    q.close();
  });
  std::uint64_t sum = 0;
  while (auto v = q.pop()) sum += *v;
  producer.join();
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

// ----------------------------------------------- ShardedProbe determinism

namespace {

constexpr IPv4Address kResolver{10, 255, 255, 53};

/// A deterministic multi-client day slice: DNS lookups followed by TLS and
/// HTTP conversations, interleaved across clients by timestamp. Spans well
/// under the idle timeouts so close reasons are packet-driven (see the
/// documented shard-clock exception in sharded_probe.hpp).
std::vector<ew::net::Frame> golden_workload() {
  struct Site {
    IPv4Address ip;
    const char* name;
  };
  const Site sites[] = {
      {{93, 184, 216, 34}, "static.example.com"},
      {{31, 13, 86, 36}, "edge-star.facebook.com"},
      {{173, 194, 11, 7}, "r3---sn.googlevideo.com"},
      {{23, 67, 1, 9}, "fbcdn.akamaihd.net"},
  };
  std::vector<ew::net::Frame> frames;
  for (int c = 0; c < 24; ++c) {
    const auto b3 = static_cast<std::uint8_t>(10 + c);
    const IPv4Address client =
        c % 2 == 0 ? IPv4Address{10, 0, 3, b3} : IPv4Address{10, 200, 1, b3};
    for (int k = 0; k < 3; ++k) {
      const auto& site = sites[static_cast<std::size_t>((c + k) % 4)];
      const std::int64_t start_us = 100'000'000LL + (c * 977 + k * 23081) * 1000LL;
      const IPv4Address addrs[] = {site.ip};
      frames.push_back(ew::synth::render_dns_response(client, kResolver, site.name, addrs,
                                                      Timestamp{start_us - 40'000}));
      ew::synth::ConversationSpec spec;
      spec.client = client;
      spec.server = site.ip;
      spec.client_port = static_cast<std::uint16_t>(41000 + c * 8 + k);
      spec.web = k == 1 ? ew::dpi::WebProtocol::kHttp : ew::dpi::WebProtocol::kTls;
      if (k == 2) {  // SPDY flows: what the classifier-upgrade test toggles
        spec.alpn = "spdy/3.1";
        spec.server_alpn = "spdy/3.1";
      }
      spec.server_name = site.name;
      spec.response_bytes = static_cast<std::size_t>(1500 + c * 137 + k * 911);
      spec.start = Timestamp{start_us};
      spec.rtt_us = 12'000 + c * 500;
      spec.teardown = (c + k) % 3 != 0;  // some flows only close at finish()
      const auto conv = ew::synth::render_conversation(spec);
      frames.insert(frames.end(), conv.begin(), conv.end());
    }
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const ew::net::Frame& a, const ew::net::Frame& b) {
                     return a.timestamp < b.timestamp;
                   });
  return frames;
}

std::vector<std::byte> encode_stream(const std::vector<FlowRecord>& records) {
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  return {w.view().begin(), w.view().end()};
}

/// Serial reference: the single-threaded probe's exports, put into
/// creation order (the order ShardedProbe::finish defines).
std::vector<FlowRecord> serial_reference(const std::vector<ew::net::Frame>& frames,
                                         const ew::probe::ProbeConfig& cfg,
                                         ew::probe::Probe::Counters* counters = nullptr,
                                         std::size_t options_flip_at = SIZE_MAX) {
  std::vector<FlowRecord> records;
  ew::probe::Probe probe(cfg, [&records](FlowRecord&& r) { records.push_back(std::move(r)); });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == options_flip_at) {
      probe.set_classifier_options({.report_spdy = false, .report_fbzero = false});
    }
    probe.process(frames[i]);
  }
  probe.finish();
  if (counters != nullptr) *counters = probe.counters();
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.ingest_seq < b.ingest_seq;
                   });
  return records;
}

}  // namespace

TEST(ShardedProbe, GoldenStreamIdenticalForEveryShardCount) {
  const auto frames = golden_workload();
  const ew::probe::ProbeConfig cfg;
  ew::probe::Probe::Counters serial_counters;
  const auto expected = encode_stream(serial_reference(frames, cfg, &serial_counters));
  ASSERT_FALSE(expected.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    ew::probe::ShardedProbeConfig scfg;
    scfg.probe = cfg;
    scfg.shards = shards;
    scfg.queue_capacity = 64;
    ew::probe::ShardedProbe sp(scfg);
    for (const auto& f : frames) sp.ingest(f);  // copies keep `frames` reusable
    const auto merged = sp.finish();
    EXPECT_EQ(encode_stream(merged), expected) << "shards=" << shards;

    const auto c = sp.counters();
    EXPECT_EQ(c.frames, serial_counters.frames) << "shards=" << shards;
    EXPECT_EQ(c.dns_responses, serial_counters.dns_responses) << "shards=" << shards;
    EXPECT_EQ(c.records_exported, serial_counters.records_exported) << "shards=" << shards;
    EXPECT_EQ(c.records_named_by_dns, serial_counters.records_named_by_dns)
        << "shards=" << shards;
    EXPECT_EQ(c.decode_failures, serial_counters.decode_failures) << "shards=" << shards;
  }
}

TEST(ShardedProbe, FeederSamplingMatchesSerialProbe) {
  const auto frames = golden_workload();
  ew::probe::ProbeConfig cfg;
  cfg.sample_rate = 3;
  ew::probe::Probe::Counters serial_counters;
  const auto expected = encode_stream(serial_reference(frames, cfg, &serial_counters));

  ew::probe::ShardedProbeConfig scfg;
  scfg.probe = cfg;
  scfg.shards = 4;
  ew::probe::ShardedProbe sp(scfg);
  for (const auto& f : frames) sp.ingest(f);
  EXPECT_EQ(encode_stream(sp.finish()), expected);
  const auto c = sp.counters();
  EXPECT_EQ(c.frames, serial_counters.frames);
  EXPECT_EQ(c.sampled_out, serial_counters.sampled_out);
  EXPECT_EQ(c.records_exported, serial_counters.records_exported);
}

TEST(ShardedProbe, ClassifierUpgradeAppliesAtSameStreamPosition) {
  const auto frames = golden_workload();
  const std::size_t flip_at = frames.size() / 2;
  const ew::probe::ProbeConfig cfg;
  const auto expected =
      encode_stream(serial_reference(frames, cfg, nullptr, flip_at));

  ew::probe::ShardedProbeConfig scfg;
  scfg.probe = cfg;
  scfg.shards = 4;
  ew::probe::ShardedProbe sp(scfg);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == flip_at) {
      sp.set_classifier_options({.report_spdy = false, .report_fbzero = false});
    }
    sp.ingest(frames[i]);
  }
  EXPECT_EQ(encode_stream(sp.finish()), expected);
}

TEST(ShardedProbe, OutageWindowMatchesSerialProbe) {
  const auto frames = golden_workload();
  const std::size_t off_at = frames.size() / 3;
  const std::size_t on_at = frames.size() / 2;
  const ew::probe::ProbeConfig cfg;

  std::vector<FlowRecord> serial_records;
  ew::probe::Probe probe(cfg,
                         [&serial_records](FlowRecord&& r) { serial_records.push_back(std::move(r)); });
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == off_at) probe.begin_outage();
    if (i == on_at) probe.end_outage();
    probe.process(frames[i]);
  }
  probe.finish();
  std::stable_sort(serial_records.begin(), serial_records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.ingest_seq < b.ingest_seq;
                   });

  ew::probe::ShardedProbeConfig scfg;
  scfg.probe = cfg;
  scfg.shards = 4;
  ew::probe::ShardedProbe sp(scfg);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == off_at) sp.begin_outage();
    if (i == on_at) sp.end_outage();
    sp.ingest(frames[i]);
  }
  EXPECT_EQ(encode_stream(sp.finish()), encode_stream(serial_records));
  EXPECT_EQ(sp.counters().dropped_offline, probe.counters().dropped_offline);
}

// ------------------------------------------------- parallel stage-one

namespace {

struct TempLakeDir {
  std::filesystem::path path;
  TempLakeDir() {
    path = std::filesystem::path(::testing::TempDir()) /
           ("ew_parallel_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  }
  ~TempLakeDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void expect_aggregates_equal(const ew::analytics::DayAggregate& a,
                             const ew::analytics::DayAggregate& b) {
  EXPECT_EQ(a.date.to_string(), b.date.to_string());
  EXPECT_EQ(a.web_bytes, b.web_bytes);
  EXPECT_EQ(a.downlink_bins, b.downlink_bins);
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    EXPECT_EQ(a.rtt_min_ms[s], b.rtt_min_ms[s]) << "service " << s;  // exact order
    EXPECT_EQ(a.health[s].packets, b.health[s].packets);
    EXPECT_EQ(a.health[s].retransmits, b.health[s].retransmits);
    EXPECT_EQ(a.health[s].out_of_order, b.health[s].out_of_order);
  }
  ASSERT_EQ(a.subscribers.size(), b.subscribers.size());
  for (const auto& [ip, sub] : a.subscribers) {
    const auto it = b.subscribers.find(ip);
    ASSERT_NE(it, b.subscribers.end());
    EXPECT_EQ(sub.access, it->second.access);
    EXPECT_EQ(sub.flows, it->second.flows);
    EXPECT_EQ(sub.bytes_up, it->second.bytes_up);
    EXPECT_EQ(sub.bytes_down, it->second.bytes_down);
    for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
      EXPECT_EQ(sub.per_service[s].flows, it->second.per_service[s].flows);
      EXPECT_EQ(sub.per_service[s].bytes_up, it->second.per_service[s].bytes_up);
      EXPECT_EQ(sub.per_service[s].bytes_down, it->second.per_service[s].bytes_down);
    }
  }
  ASSERT_EQ(a.server_ips.size(), b.server_ips.size());
  for (const auto& [ip, stats] : a.server_ips) {
    const auto it = b.server_ips.find(ip);
    ASSERT_NE(it, b.server_ips.end());
    EXPECT_EQ(stats.service_mask, it->second.service_mask);
    EXPECT_EQ(stats.bytes, it->second.bytes);
  }
  EXPECT_EQ(a.domain_bytes, b.domain_bytes);
  EXPECT_EQ(a.unclassified_domain_bytes, b.unclassified_domain_bytes);
}

}  // namespace

TEST(ParallelAnalytics, BlockFanOutReproducesSerialAggregate) {
  TempLakeDir dir;
  ew::storage::DataLake lake(dir.path);
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7, 0.2)};
  const ew::core::CivilDate day{2015, 6, 10};
  // Two appends → several blocks, so the fan-out actually splits work.
  ASSERT_TRUE(lake.append(day, gen.day_records(day)));
  ASSERT_TRUE(lake.append(day, gen.day_records({2015, 6, 11})));

  const auto serial = ew::analytics::aggregate_day(lake, day);
  ASSERT_TRUE(serial.scan.ok());
  ASSERT_GT(serial.scan.records_delivered, 0u);
  ASSERT_GT(lake.load_day_blocks(day).blocks().size(), 1u);

  ThreadPool pool(4);
  const auto parallel = ew::analytics::aggregate_day_parallel(lake, day, pool);
  EXPECT_EQ(parallel.scan.records_delivered, serial.scan.records_delivered);
  EXPECT_EQ(parallel.scan.blocks_skipped, serial.scan.blocks_skipped);
  EXPECT_EQ(parallel.scan.errc, serial.scan.errc);
  expect_aggregates_equal(parallel.aggregate, serial.aggregate);
}

TEST(ParallelAnalytics, DayFanOutReproducesSerialAggregates) {
  TempLakeDir dir;
  ew::storage::DataLake lake(dir.path);
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7, 0.1)};
  const std::vector<ew::core::CivilDate> days = {
      {2014, 3, 3}, {2015, 6, 10}, {2016, 9, 20}, {2017, 1, 5}};
  for (const auto day : days) ASSERT_TRUE(lake.append(day, gen.day_records(day)));

  ThreadPool pool(4);
  const auto results = ew::analytics::aggregate_days_parallel(lake, days, pool);
  ASSERT_EQ(results.size(), days.size());
  for (std::size_t i = 0; i < days.size(); ++i) {
    const auto serial = ew::analytics::aggregate_day(lake, days[i]);
    EXPECT_EQ(results[i].scan.records_delivered, serial.scan.records_delivered);
    EXPECT_EQ(results[i].scan.errc, serial.scan.errc);
    expect_aggregates_equal(results[i].aggregate, serial.aggregate);
  }
}

TEST(ParallelAnalytics, DamagedDayReportsSameStatusAsSerialScan) {
  TempLakeDir dir;
  ew::storage::DataLake lake(dir.path);
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7, 0.2)};
  const ew::core::CivilDate day{2015, 6, 10};
  ASSERT_TRUE(lake.append(day, gen.day_records(day)));
  ASSERT_TRUE(lake.append(day, gen.day_records({2015, 6, 12})));

  // Flip bytes mid-file: CRC framing quarantines the damaged block(s).
  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path) / 2));
    const char junk[32] = {};
    f.write(junk, sizeof junk);
  }

  const auto serial = ew::analytics::aggregate_day(lake, day);
  EXPECT_EQ(serial.scan.errc, ew::core::Errc::kCorrupt);
  EXPECT_GT(serial.scan.blocks_skipped, 0u);

  ThreadPool pool(4);
  const auto parallel = ew::analytics::aggregate_day_parallel(lake, day, pool);
  EXPECT_EQ(parallel.scan.records_delivered, serial.scan.records_delivered);
  EXPECT_EQ(parallel.scan.blocks_skipped, serial.scan.blocks_skipped);
  EXPECT_EQ(parallel.scan.errc, serial.scan.errc);
  expect_aggregates_equal(parallel.aggregate, serial.aggregate);

  const auto missing = ew::analytics::aggregate_day_parallel(lake, {2019, 1, 1}, pool);
  EXPECT_EQ(missing.scan.errc, ew::core::Errc::kNotFound);
  EXPECT_TRUE(missing.aggregate.subscribers.empty());
}

TEST(ParallelAnalytics, ProjectedScanReproducesFullDecodeAggregate) {
  // aggregate_day pushes kDayAggregateScanFields down to the v3 decoder by
  // default; this is the check parallel.hpp promises keeps that mask
  // honest — the projected aggregate must be bit-identical to one built
  // from fully-materialized records, or add() grew a field read the
  // projection no longer covers.
  TempLakeDir dir;
  ew::storage::DataLake lake(dir.path);
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7, 0.2)};
  const ew::core::CivilDate day{2015, 6, 10};
  ASSERT_TRUE(lake.append(day, gen.day_records(day)));

  const auto projected = ew::analytics::aggregate_day(lake, day);
  ASSERT_TRUE(projected.scan.ok());
  ASSERT_GT(projected.scan.records_delivered, 0u);

  ew::storage::ScanScratch scratch;
  const auto all = ew::storage::ScanPredicate::project(ew::storage::scan_fields::kAll);
  const auto full = ew::analytics::aggregate_day(lake, day, scratch, &all);
  ASSERT_TRUE(full.scan.ok());
  EXPECT_EQ(projected.scan.records_delivered, full.scan.records_delivered);
  expect_aggregates_equal(projected.aggregate, full.aggregate);
}

TEST(ParallelScan, DecompressIntoReusesScratchBuffer) {
  std::vector<std::byte> input;
  for (int i = 0; i < 10000; ++i) {
    input.push_back(static_cast<std::byte>(i % 7));  // compressible
  }
  const auto compressed = ew::storage::compress_block(input);
  ew::storage::ScanScratch scratch;
  ASSERT_TRUE(ew::storage::decompress_block_into(compressed, scratch.decompressed));
  EXPECT_EQ(scratch.decompressed, input);
  const auto* before = scratch.decompressed.data();
  ASSERT_TRUE(ew::storage::decompress_block_into(compressed, scratch.decompressed));
  EXPECT_EQ(scratch.decompressed, input);
  EXPECT_EQ(scratch.decompressed.data(), before);  // capacity reused, no realloc

  ASSERT_FALSE(
      ew::storage::decompress_block_into(std::span<const std::byte>{}, scratch.decompressed));
  EXPECT_TRUE(scratch.decompressed.empty());  // failure leaves it cleared
}
