// DayAggregate::merge feeds two consumers that must agree with the serial
// scan: the figure-level analytics (figures.hpp / infrastructure.hpp) and
// the query:: rollup builder, which aggregates each day exactly once and
// derives every dimension from the result. These tests split days into
// partial aggregates, merge them back, and assert figure outputs and
// rollup encodings are identical to the unsplit path — the property that
// makes rollups built from parallel partials trustworthy.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "analytics/figures.hpp"
#include "analytics/infrastructure.hpp"
#include "query/rollup.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
using ew::analytics::DayAggregate;
using ew::analytics::DayAggregator;
using ew::core::CivilDate;

namespace {

struct SplitDay {
  DayAggregate whole;
  DayAggregate merged;  ///< first-half partial merged with second-half partial
};

/// Aggregate one scenario day serially and as two merged halves of the
/// record stream (the shape aggregate_day_parallel produces).
SplitDay split_aggregate(const ew::synth::WorkloadGenerator& gen, CivilDate day) {
  const auto records = gen.day_records(day);
  DayAggregator whole(day);
  DayAggregator first(day);
  DayAggregator second(day);
  for (std::size_t i = 0; i < records.size(); ++i) {
    whole.add(records[i]);
    (i < records.size() / 2 ? first : second).add(records[i]);
  }
  SplitDay out{std::move(whole).take(), std::move(first).take()};
  out.merged.merge(std::move(second).take());
  return out;
}

struct MergeCorpus {
  ew::synth::Scenario scenario;
  std::vector<DayAggregate> whole;
  std::vector<DayAggregate> merged;
};

MergeCorpus& merge_corpus() {
  static MergeCorpus* c = [] {
    auto* corpus = new MergeCorpus;
    corpus->scenario = ew::synth::build_paper_scenario(23, 0.1);
    const ew::synth::WorkloadGenerator gen{corpus->scenario};
    for (const CivilDate day : std::vector<CivilDate>{
             {2015, 6, 1}, {2015, 6, 2}, {2015, 7, 1}, {2015, 7, 2}}) {
      auto split = split_aggregate(gen, day);
      corpus->whole.push_back(std::move(split.whole));
      corpus->merged.push_back(std::move(split.merged));
    }
    return corpus;
  }();
  return *c;
}

}  // namespace

TEST(FiguresMerge, VolumeTrendIdenticalOnMergedPartials) {
  auto& c = merge_corpus();
  const auto a = ew::analytics::volume_trend(c.whole);
  const auto b = ew::analytics::volume_trend(c.merged);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].month, b[m].month);
    for (std::size_t t = 0; t < ew::analytics::kAccessTechCount; ++t) {
      EXPECT_DOUBLE_EQ(a[m].down_mb[t], b[m].down_mb[t]);
      EXPECT_DOUBLE_EQ(a[m].up_mb[t], b[m].up_mb[t]);
      EXPECT_EQ(a[m].subscribers[t], b[m].subscribers[t]);
    }
  }
}

TEST(FiguresMerge, ServiceMatrixIdenticalOnMergedPartials) {
  auto& c = merge_corpus();
  const auto a = ew::analytics::service_matrix(c.whole);
  const auto b = ew::analytics::service_matrix(c.merged);
  ASSERT_EQ(a.months.size(), b.months.size());
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    ASSERT_EQ(a.cells[s].size(), b.cells[s].size());
    for (std::size_t m = 0; m < a.cells[s].size(); ++m) {
      EXPECT_DOUBLE_EQ(a.cells[s][m].popularity_pct, b.cells[s][m].popularity_pct);
      EXPECT_DOUBLE_EQ(a.cells[s][m].byte_share_pct, b.cells[s][m].byte_share_pct);
    }
  }
}

TEST(FiguresMerge, ProtocolSharesIdenticalOnMergedPartials) {
  auto& c = merge_corpus();
  const auto a = ew::analytics::protocol_shares(c.whole);
  const auto b = ew::analytics::protocol_shares(c.merged);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (std::size_t p = 0; p < ew::analytics::kWebProtocolCount; ++p) {
      EXPECT_DOUBLE_EQ(a[m].share_pct[p], b[m].share_pct[p]);
    }
  }
}

TEST(FiguresMerge, InfrastructureIdenticalOnMergedPartials) {
  auto& c = merge_corpus();
  const auto service = ew::services::ServiceId::kFacebook;
  const auto a = ew::analytics::ip_lifecycle(c.whole, service);
  const auto b = ew::analytics::ip_lifecycle(c.merged, service);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dedicated, b[i].dedicated);
    EXPECT_EQ(a[i].shared, b[i].shared);
    EXPECT_EQ(a[i].cumulative_unique, b[i].cumulative_unique);
  }

  const ew::analytics::RibProvider rib_for =
      [&c](ew::core::MonthIndex) -> const ew::asn::Rib& { return *c.scenario.rib; };
  const auto asn_a = ew::analytics::asn_breakdown(c.whole, service, rib_for);
  const auto asn_b = ew::analytics::asn_breakdown(c.merged, service, rib_for);
  ASSERT_EQ(asn_a.size(), asn_b.size());
  for (std::size_t m = 0; m < asn_a.size(); ++m) {
    EXPECT_EQ(asn_a[m].month, asn_b[m].month);
    ASSERT_EQ(asn_a[m].ips_by_asn.size(), asn_b[m].ips_by_asn.size());
    for (const auto& [asn, avg] : asn_a[m].ips_by_asn) {
      EXPECT_DOUBLE_EQ(avg, asn_b[m].ips_by_asn.at(asn));
    }
  }
}

TEST(FiguresMerge, RollupBuilderIdenticalOnMergedPartials) {
  // The property the rollup store actually relies on: a rollup built from a
  // merged-partials aggregate is byte-identical to one built from the
  // serial aggregate, for every dimension.
  auto& c = merge_corpus();
  for (std::size_t i = 0; i < c.whole.size(); ++i) {
    for (std::size_t d = 0; d < ew::query::kDimensionCount; ++d) {
      const auto dim = static_cast<ew::query::Dimension>(d);
      const auto from_whole = ew::query::encode_rollup(ew::query::build_day_rollup(
          c.whole[i], dim, ew::services::ServiceCatalog::standard(), c.scenario.rib.get()));
      const auto from_merged = ew::query::encode_rollup(ew::query::build_day_rollup(
          c.merged[i], dim, ew::services::ServiceCatalog::standard(), c.scenario.rib.get()));
      EXPECT_EQ(from_whole, from_merged)
          << "day " << i << " dim " << ew::query::to_string(dim);
    }
  }
}
