// Deterministic chaos harness for the resilient runtime (DESIGN §11):
// kill the pipeline at scripted points, resume from the last checkpoint,
// and require the recovered lake to be byte-identical to an uninterrupted
// run's. Every fault here is a pure function of a seed — a failure
// reproduces forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "core/bytes.hpp"
#include "probe/sharded_probe.hpp"
#include "runtime/chaos.hpp"
#include "runtime/quarantine.hpp"
#include "runtime/supervisor.hpp"
#include "storage/codec.hpp"
#include "storage/datalake.hpp"
#include "storage/fault_injection.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;

namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("ew_chaos_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Two civil days of deterministic traffic so recovery also has to get the
/// day-file split right.
std::vector<ew::net::Frame> workload() {
  constexpr IPv4Address kResolver{10, 255, 255, 53};
  struct Site {
    IPv4Address ip;
    const char* name;
  };
  const Site sites[] = {
      {{93, 184, 216, 34}, "static.example.com"},
      {{31, 13, 86, 36}, "edge-star.facebook.com"},
      {{173, 194, 11, 7}, "r3---sn.googlevideo.com"},
      {{151, 101, 1, 140}, "cdn.sstatic.net"},
  };
  std::vector<ew::net::Frame> frames;
  for (int day = 0; day < 2; ++day) {
    const std::int64_t day_base_us = day * 86'400'000'000LL + 50'000'000'000LL;
    for (int c = 0; c < 12; ++c) {
      const IPv4Address client{10, 0, 9, static_cast<std::uint8_t>(20 + c)};
      for (int k = 0; k < 4; ++k) {
        const auto& site = sites[static_cast<std::size_t>((c + k + day) % 4)];
        const std::int64_t start_us = day_base_us + (c * 1499 + k * 37501) * 1000LL;
        const IPv4Address addrs[] = {site.ip};
        frames.push_back(ew::synth::render_dns_response(
            client, kResolver, site.name, addrs, Timestamp{start_us - 35'000}));
        ew::synth::ConversationSpec spec;
        spec.client = client;
        spec.server = site.ip;
        spec.client_port = static_cast<std::uint16_t>(41000 + day * 1000 + c * 8 + k);
        spec.web = (c + k) % 2 == 0 ? ew::dpi::WebProtocol::kTls : ew::dpi::WebProtocol::kHttp;
        spec.server_name = site.name;
        spec.response_bytes = static_cast<std::size_t>(6'000 + c * 917 + k * 1'311);
        spec.start = Timestamp{start_us};
        spec.rtt_us = 8'000 + c * 450;
        spec.teardown = (c + k + day) % 4 != 0;
        const auto conv = ew::synth::render_conversation(spec);
        frames.insert(frames.end(), conv.begin(), conv.end());
      }
    }
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const ew::net::Frame& a, const ew::net::Frame& b) {
                     return a.timestamp < b.timestamp;
                   });
  return frames;
}

ew::runtime::SupervisorConfig base_config(const std::filesystem::path& dir) {
  ew::runtime::SupervisorConfig cfg;
  cfg.probe.shards = 2;
  cfg.probe.queue_capacity = 4096;  // no backpressure: determinism first
  cfg.probe.snapshot_interval = 64;
  cfg.checkpoint_interval = 500;
  cfg.checkpoint_path = dir / "pipeline.ewpc";
  cfg.quarantine_path = dir / "poison.ewq";
  return cfg;
}

/// Raw bytes of every day file, keyed by day — the strongest equality.
std::map<ew::core::CivilDate, std::vector<std::byte>> lake_bytes(
    const ew::storage::DataLake& lake) {
  std::map<ew::core::CivilDate, std::vector<std::byte>> out;
  for (const auto day : lake.days()) {
    std::ifstream in(lake.root() / ew::storage::DataLake::day_filename(day),
                     std::ios::binary | std::ios::ate);
    std::vector<char> raw(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(raw.data(), static_cast<std::streamsize>(raw.size()));
    auto& bytes = out[day];
    bytes.resize(raw.size());
    std::transform(raw.begin(), raw.end(), bytes.begin(),
                   [](char c) { return static_cast<std::byte>(c); });
  }
  return out;
}

std::map<ew::core::CivilDate, std::vector<std::byte>> record_streams(
    const ew::storage::DataLake& lake) {
  std::map<ew::core::CivilDate, std::vector<std::byte>> out;
  for (const auto day : lake.days()) {
    ew::core::ByteWriter w;
    for (const auto& r : lake.read_day(day)) ew::storage::encode_record(r, w);
    out[day] = {w.view().begin(), w.view().end()};
  }
  return out;
}

/// The uninterrupted reference run: same config, same frames, no kill.
/// Each caller gets its own scratch dir so ctest -j can shard tests into
/// concurrent processes without collisions.
std::map<ew::core::CivilDate, std::vector<std::byte>> golden_run(
    const std::string& name, const std::vector<ew::net::Frame>& frames,
    const ew::runtime::ChaosConfig& chaos_cfg,
    std::map<ew::core::CivilDate, ew::analytics::CaptureQuality>* quality_out = nullptr) {
  const auto dir = fresh_dir("golden_" + name);
  ew::storage::DataLake lake{dir / "lake"};
  auto cfg = base_config(dir);
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();
  ew::runtime::Supervisor sup{lake, cfg};
  EXPECT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  EXPECT_TRUE(sup.finish());
  EXPECT_TRUE(sup.health().reconciles());
  if (quality_out) *quality_out = sup.day_quality();
  return lake_bytes(lake);
}

}  // namespace

// A killed-and-resumed run must rebuild the exact same lake, byte for
// byte, no matter where the kill lands relative to checkpoint barriers.
TEST(ChaosRecovery, KillPointSweepIsByteIdentical) {
  const auto frames = workload();
  ASSERT_GT(frames.size(), 1500u);
  const auto golden = golden_run("sweep", frames, {});
  ASSERT_FALSE(golden.empty());

  // Kill points straddle checkpoint barriers (interval 500): right before,
  // on, right after, mid-interval, and before the first checkpoint.
  const std::uint64_t kill_points[] = {120, 499, 500, 501, 750, 1000, 1337};
  for (const std::uint64_t kill_at : kill_points) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    const auto dir = fresh_dir("kill_" + std::to_string(kill_at));
    ew::storage::DataLake lake{dir / "lake"};

    {
      ew::runtime::Supervisor sup{lake, base_config(dir)};
      ASSERT_TRUE(sup.start());
      for (std::uint64_t i = 0; i < kill_at; ++i) sup.offer(frames[i]);
      sup.simulate_crash();  // SIGKILL: no flush, no checkpoint
    }

    ew::storage::DataLake lake2{dir / "lake"};
    ew::runtime::Supervisor sup{lake2, base_config(dir)};
    const auto replay_from = sup.resume();
    ASSERT_TRUE(replay_from);
    EXPECT_LE(*replay_from, kill_at);
    // Resume returns the replay cursor: skip what was already consumed.
    for (std::uint64_t i = *replay_from; i < frames.size(); ++i) sup.offer(frames[i]);
    ASSERT_TRUE(sup.finish());
    EXPECT_TRUE(sup.health().reconciles());

    EXPECT_EQ(lake_bytes(lake2), golden) << "lake diverged after kill at " << kill_at;
  }
}

// Poison frames must land in quarantine identically whether or not the run
// was interrupted: the schedule is keyed on the probe sequence, and resume
// restores the sequence space exactly.
TEST(ChaosRecovery, PoisonAccountingSurvivesKillAndResume) {
  const auto frames = workload();
  ew::runtime::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 99;
  chaos_cfg.poison_every = 120;
  chaos_cfg.suspect_every = 0;  // plain poisons: drop + quarantine, state untouched
  std::map<ew::core::CivilDate, ew::analytics::CaptureQuality> golden_quality;
  const auto golden = golden_run("poison", frames, chaos_cfg, &golden_quality);

  const auto dir = fresh_dir("poison_resume");
  ew::storage::DataLake lake{dir / "lake"};
  auto cfg = base_config(dir);
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();
  {
    ew::runtime::Supervisor sup{lake, cfg};
    ASSERT_TRUE(sup.start());
    for (std::uint64_t i = 0; i < 777; ++i) sup.offer(frames[i]);
    sup.simulate_crash();
  }

  ew::storage::DataLake lake2{dir / "lake"};
  auto cfg2 = base_config(dir);
  ew::runtime::ChaosSchedule chaos2{chaos_cfg};
  cfg2.probe.frame_inspector = chaos2.inspector();
  ew::runtime::Supervisor sup{lake2, cfg2};
  const auto replay_from = sup.resume();
  ASSERT_TRUE(replay_from);
  for (std::uint64_t i = *replay_from; i < frames.size(); ++i) sup.offer(frames[i]);
  ASSERT_TRUE(sup.finish());

  const auto h = sup.health();
  EXPECT_TRUE(h.reconciles());
  EXPECT_EQ(lake_bytes(lake2), golden);
  EXPECT_EQ(sup.day_quality(), golden_quality);

  // The quarantine file holds each poison exactly once (entries past the
  // checkpoint were truncated on resume and re-captured during replay).
  const auto entries = ew::runtime::QuarantineLog::read_all(dir / "poison.ewq");
  ASSERT_TRUE(entries);
  std::uint64_t expected = 0;
  for (std::uint64_t seq = 0; seq < frames.size(); ++seq) {
    if (chaos.poisons(seq)) ++expected;
  }
  EXPECT_EQ(entries->size(), expected);
  std::vector<std::uint64_t> seqs;
  for (const auto& e : *entries) seqs.push_back(e.seq);
  auto sorted = seqs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "a poison frame was quarantined twice";
}

// Suspect poisons roll shards back to their last snapshot. The rollback
// anchors are re-established by checkpoint barriers, so a resumed run
// replays the same rollbacks and converges on the same lake.
TEST(ChaosRecovery, SuspectRollbacksAreReplayedIdentically) {
  const auto frames = workload();
  ew::runtime::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 5;
  chaos_cfg.poison_every = 400;
  chaos_cfg.suspect_every = 1;  // every poison wrecks shard state
  const auto golden = golden_run("suspect", frames, chaos_cfg);

  const auto dir = fresh_dir("suspect_resume");
  ew::storage::DataLake lake{dir / "lake"};
  auto cfg = base_config(dir);
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();
  {
    ew::runtime::Supervisor sup{lake, cfg};
    ASSERT_TRUE(sup.start());
    for (std::uint64_t i = 0; i < 1100; ++i) sup.offer(frames[i]);
    sup.simulate_crash();
  }

  ew::storage::DataLake lake2{dir / "lake"};
  auto cfg2 = base_config(dir);
  ew::runtime::ChaosSchedule chaos2{chaos_cfg};
  cfg2.probe.frame_inspector = chaos2.inspector();
  ew::runtime::Supervisor sup{lake2, cfg2};
  const auto replay_from = sup.resume();
  ASSERT_TRUE(replay_from);
  for (std::uint64_t i = *replay_from; i < frames.size(); ++i) sup.offer(frames[i]);
  ASSERT_TRUE(sup.finish());
  EXPECT_TRUE(sup.health().reconciles());
  EXPECT_EQ(lake_bytes(lake2), golden);
}

// Double kill: crash, resume, crash again mid-replay, resume again.
TEST(ChaosRecovery, SurvivesRepeatedKills) {
  const auto frames = workload();
  const auto golden = golden_run("double", frames, {});

  const auto dir = fresh_dir("double_kill");
  {
    ew::storage::DataLake lake{dir / "lake"};
    ew::runtime::Supervisor sup{lake, base_config(dir)};
    ASSERT_TRUE(sup.start());
    for (std::uint64_t i = 0; i < 620; ++i) sup.offer(frames[i]);
    sup.simulate_crash();
  }
  std::uint64_t second_kill = 0;
  {
    ew::storage::DataLake lake{dir / "lake"};
    ew::runtime::Supervisor sup{lake, base_config(dir)};
    const auto replay_from = sup.resume();
    ASSERT_TRUE(replay_from);
    second_kill = *replay_from + 430;  // dies again before catching up
    for (std::uint64_t i = *replay_from; i < second_kill; ++i) sup.offer(frames[i]);
    sup.simulate_crash();
  }
  ew::storage::DataLake lake{dir / "lake"};
  ew::runtime::Supervisor sup{lake, base_config(dir)};
  const auto replay_from = sup.resume();
  ASSERT_TRUE(replay_from);
  for (std::uint64_t i = *replay_from; i < frames.size(); ++i) sup.offer(frames[i]);
  ASSERT_TRUE(sup.finish());
  EXPECT_TRUE(sup.health().reconciles());
  EXPECT_EQ(lake_bytes(lake), golden);
}

// A crash in the middle of a lake append leaves a torn tail. Resume must
// cut it back to the checkpointed durable length and replay — the decoded
// record streams end up equal to the golden run's (framing may differ:
// the re-flushed batch merges with the next barrier's).
TEST(ChaosRecovery, CrashMidAppendRepairsTornTail) {
  const auto frames = workload();
  const auto golden_records = [&] {
    const auto dir = fresh_dir("golden_records");
    ew::storage::DataLake lake{dir / "lake"};
    ew::runtime::Supervisor sup{lake, base_config(dir)};
    EXPECT_TRUE(sup.start());
    for (const auto& f : frames) sup.offer(f);
    EXPECT_TRUE(sup.finish());
    return record_streams(lake);
  }();

  const auto dir = fresh_dir("torn_tail");
  {
    ew::storage::DataLake lake{dir / "lake"};
    // The second write handle dies partway through its batch: the first
    // checkpoint's append lands, a later one tears.
    lake.set_file_factory([n = std::make_shared<int>(0)]() mutable
                              -> std::unique_ptr<ew::storage::WritableFile> {
      if (++*n == 2) {
        return std::make_unique<ew::storage::FaultyFile>(
            ew::storage::make_posix_file(),
            ew::storage::FaultPlan{ew::storage::FaultKind::kCrashAtOffset, 700});
      }
      return ew::storage::make_posix_file();
    });
    ew::runtime::Supervisor sup{lake, base_config(dir)};
    ASSERT_TRUE(sup.start());
    for (std::uint64_t i = 0; i < 1200; ++i) sup.offer(frames[i]);
    sup.simulate_crash();
  }

  ew::storage::DataLake lake{dir / "lake"};
  ew::runtime::Supervisor sup{lake, base_config(dir)};
  const auto replay_from = sup.resume();
  ASSERT_TRUE(replay_from);
  for (std::uint64_t i = *replay_from; i < frames.size(); ++i) sup.offer(frames[i]);
  ASSERT_TRUE(sup.finish());

  EXPECT_TRUE(sup.health().reconciles());
  EXPECT_TRUE(lake.fsck().clean()) << "torn tail survived recovery";
  EXPECT_EQ(record_streams(lake), golden_records);
}

// Resume with no checkpoint file behaves like start(): full replay.
TEST(ChaosRecovery, ResumeWithoutCheckpointStartsFresh) {
  const auto frames = workload();
  const auto golden = golden_run("nocp", frames, {});

  const auto dir = fresh_dir("no_checkpoint");
  ew::storage::DataLake lake{dir / "lake"};
  ew::runtime::Supervisor sup{lake, base_config(dir)};
  const auto replay_from = sup.resume();
  ASSERT_TRUE(replay_from);
  EXPECT_EQ(*replay_from, 0u);
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());
  EXPECT_EQ(lake_bytes(lake), golden);
}

// A corrupt checkpoint must be refused loudly, not half-restored.
TEST(ChaosRecovery, CorruptCheckpointIsRejected) {
  const auto frames = workload();
  const auto dir = fresh_dir("corrupt_cp");
  {
    ew::storage::DataLake lake{dir / "lake"};
    ew::runtime::Supervisor sup{lake, base_config(dir)};
    ASSERT_TRUE(sup.start());
    for (std::uint64_t i = 0; i < 800; ++i) sup.offer(frames[i]);
    sup.simulate_crash();
  }
  // Smash the checkpoint payload.
  const auto cp_path = dir / "pipeline.ewpc";
  ASSERT_TRUE(std::filesystem::exists(cp_path));
  {
    std::fstream f(cp_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-5, std::ios::end);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  ew::storage::DataLake lake{dir / "lake"};
  ew::runtime::Supervisor sup{lake, base_config(dir)};
  const auto replay_from = sup.resume();
  ASSERT_FALSE(replay_from);
  EXPECT_EQ(replay_from.error(), ew::core::Errc::kCorrupt);
}
