// Tests for L2-L4 wire formats and frame decode/build round-trips.
#include <gtest/gtest.h>

#include "core/bytes.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"

namespace ew = edgewatch;
using ew::core::ByteReader;
using ew::core::ByteWriter;
using ew::core::IPv4Address;

namespace {

ew::net::Frame tcp_frame(std::string_view payload, std::uint8_t flags = ew::net::TcpFlags::kAck) {
  return ew::net::PacketBuilder{}
      .ts(ew::core::Timestamp::from_seconds(100))
      .ip(IPv4Address{10, 0, 0, 1}, IPv4Address{157, 240, 1, 1})
      .tcp(44321, 443, 1000, 2000, flags)
      .payload(payload)
      .build();
}

}  // namespace

TEST(Ethernet, RoundTrip) {
  ew::net::EthernetHeader h;
  h.src = {{1, 2, 3, 4, 5, 6}};
  h.dst = {{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}};
  h.ether_type = 0x0800;
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), ew::net::EthernetHeader::kSize);
  ByteReader r{w.view()};
  const auto back = ew::net::EthernetHeader::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->ether_type, h.ether_type);
  EXPECT_EQ(back->src.to_string(), "01:02:03:04:05:06");
}

TEST(IPv4Header, RoundTripWithOptions) {
  ew::net::IPv4Header h;
  h.src = IPv4Address{192, 168, 1, 10};
  h.dst = IPv4Address{8, 8, 8, 8};
  h.protocol = 6;
  h.ttl = 57;
  h.identification = 0x1234;
  h.options = ew::core::to_bytes(std::string("\x01\x01\x01\x01", 4));  // NOPs
  h.total_length = static_cast<std::uint16_t>(h.header_length() + 100);
  ByteWriter w;
  h.serialize(w);
  ByteReader r{w.view()};
  const auto back = ew::net::IPv4Header::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->ttl, 57);
  EXPECT_EQ(back->header_length(), 24u);
  EXPECT_EQ(back->payload_length(), 100u);
  EXPECT_FALSE(back->is_fragment());
}

TEST(IPv4Header, SerializedChecksumVerifies) {
  ew::net::IPv4Header h;
  h.src = IPv4Address{10, 0, 0, 1};
  h.dst = IPv4Address{10, 0, 0, 2};
  h.protocol = 17;
  h.total_length = 28;
  ByteWriter w;
  h.serialize(w);
  // RFC 1071: the checksum of a header including its checksum field is 0.
  std::uint32_t sum = 0;
  const auto bytes = w.view();
  for (std::size_t i = 0; i + 1 < bytes.size(); i += 2) {
    sum += (std::to_integer<std::uint32_t>(bytes[i]) << 8) |
           std::to_integer<std::uint32_t>(bytes[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(static_cast<std::uint16_t>(~sum), 0u);
}

TEST(IPv4Header, ParseRejectsNonV4AndShortIhl) {
  // Version 6 nibble.
  auto v6 = ew::core::to_bytes(std::string("\x65\x00\x00\x14", 4) + std::string(16, '\0'));
  ByteReader r6{v6};
  EXPECT_FALSE(ew::net::IPv4Header::parse(r6).has_value());
  // IHL of 4 (16 bytes) is illegal.
  auto short_ihl = ew::core::to_bytes(std::string("\x44\x00\x00\x14", 4) + std::string(16, '\0'));
  ByteReader rs{short_ihl};
  EXPECT_FALSE(ew::net::IPv4Header::parse(rs).has_value());
}

TEST(IPv4Header, FragmentFlagsDecode) {
  ew::net::IPv4Header h;
  h.src = IPv4Address{1, 2, 3, 4};
  h.dst = IPv4Address{4, 3, 2, 1};
  h.protocol = 6;
  h.flags = 0x1;  // more fragments
  h.fragment_offset = 185;
  h.total_length = 20;
  ByteWriter w;
  h.serialize(w);
  ByteReader r{w.view()};
  const auto back = ew::net::IPv4Header::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_fragment());
  EXPECT_EQ(back->fragment_offset, 185);
  EXPECT_EQ(back->flags, 0x1);
}

TEST(TcpHeader, RoundTripWithOptions) {
  ew::net::TcpHeader h;
  h.src_port = 44321;
  h.dst_port = 443;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = ew::net::TcpFlags::kSyn;
  h.window = 29200;
  h.options.push_back({ew::net::TcpOption::kMss, ew::core::to_bytes(std::string("\x05\xb4", 2))});
  h.options.push_back({ew::net::TcpOption::kSackPermitted, {}});
  h.options.push_back({ew::net::TcpOption::kWindowScale, ew::core::to_bytes(std::string("\x07", 1))});
  ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size() % 4, 0u);
  ByteReader r{w.view()};
  const auto back = ew::net::TcpHeader::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src_port, 44321);
  EXPECT_EQ(back->seq, 0xdeadbeefu);
  EXPECT_TRUE(back->has(ew::net::TcpFlags::kSyn));
  ASSERT_TRUE(back->mss().has_value());
  EXPECT_EQ(*back->mss(), 1460);
}

TEST(TcpHeader, ParseRejectsTruncatedOptions) {
  // data_offset claims 24 bytes but the MSS option length field overruns.
  ByteWriter w;
  w.u16(1);
  w.u16(2);
  w.u32(0);
  w.u32(0);
  w.u8(6 << 4);  // 24-byte header
  w.u8(0);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u8(ew::net::TcpOption::kMss);
  w.u8(10);  // claims 8 option bytes, only 2 remain
  w.u16(1460);
  ByteReader r{w.view()};
  EXPECT_FALSE(ew::net::TcpHeader::parse(r).has_value());
}

TEST(UdpHeader, RoundTripAndLengthValidation) {
  ew::net::UdpHeader h;
  h.src_port = 53124;
  h.dst_port = 53;
  h.length = 8 + 31;
  ByteWriter w;
  h.serialize(w);
  ByteReader r{w.view()};
  const auto back = ew::net::UdpHeader::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dst_port, 53);
  EXPECT_EQ(back->length, 39);

  ByteWriter bad;
  bad.u16(1);
  bad.u16(2);
  bad.u16(4);  // length < 8 is illegal
  bad.u16(0);
  ByteReader rb{bad.view()};
  EXPECT_FALSE(ew::net::UdpHeader::parse(rb).has_value());
}

TEST(DecodeFrame, FullTcpFrame) {
  const auto frame = tcp_frame("hello tls");
  const auto pkt = ew::net::decode_frame(frame);
  ASSERT_TRUE(pkt.has_value());
  ASSERT_TRUE(pkt->tcp.has_value());
  EXPECT_FALSE(pkt->udp.has_value());
  EXPECT_EQ(pkt->ip.src, (IPv4Address{10, 0, 0, 1}));
  EXPECT_EQ(pkt->tcp->dst_port, 443);
  EXPECT_EQ(pkt->payload.size(), 9u);
  EXPECT_EQ(pkt->transport_payload_declared(), 9u);
  const auto t = pkt->five_tuple();
  EXPECT_EQ(t.proto, ew::core::TransportProto::kTcp);
  EXPECT_EQ(t.src_port, 44321);
}

TEST(DecodeFrame, UdpFrame) {
  const auto frame = ew::net::PacketBuilder{}
                         .ip(IPv4Address{10, 0, 0, 2}, IPv4Address{8, 8, 8, 8})
                         .udp(5353, 53)
                         .payload("dns-query-bytes")
                         .build();
  const auto pkt = ew::net::decode_frame(frame);
  ASSERT_TRUE(pkt.has_value());
  ASSERT_TRUE(pkt->udp.has_value());
  EXPECT_EQ(pkt->udp->length, 8u + 15u);
  EXPECT_EQ(pkt->transport_payload_declared(), 15u);
}

TEST(DecodeFrame, RejectsNonIPv4) {
  ew::net::Frame f;
  f.data = ew::core::to_bytes(std::string(14, '\0'));  // ether_type 0
  EXPECT_FALSE(ew::net::decode_frame(f).has_value());
}

TEST(DecodeFrame, RejectsTruncatedIpHeader) {
  auto frame = tcp_frame("x");
  frame.data.resize(ew::net::EthernetHeader::kSize + 10);
  EXPECT_FALSE(ew::net::decode_frame(frame).has_value());
}

TEST(DecodeFrame, SkipsVlanTag) {
  // Build a plain frame, then splice a VLAN tag in after the MACs.
  const auto plain = tcp_frame("v");
  ew::net::Frame tagged;
  tagged.timestamp = plain.timestamp;
  tagged.data.assign(plain.data.begin(), plain.data.begin() + 12);
  tagged.data.push_back(static_cast<std::byte>(0x81));
  tagged.data.push_back(static_cast<std::byte>(0x00));
  tagged.data.push_back(static_cast<std::byte>(0x00));
  tagged.data.push_back(static_cast<std::byte>(0x64));  // VID 100
  tagged.data.insert(tagged.data.end(), plain.data.begin() + 12, plain.data.end());
  const auto pkt = ew::net::decode_frame(tagged);
  ASSERT_TRUE(pkt.has_value());
  ASSERT_TRUE(pkt->tcp.has_value());
  EXPECT_EQ(pkt->tcp->dst_port, 443);
}

TEST(DecodeFrame, NonFirstFragmentHasNoL4) {
  ew::net::IPv4Header h;
  h.src = IPv4Address{1, 1, 1, 1};
  h.dst = IPv4Address{2, 2, 2, 2};
  h.protocol = 6;
  h.fragment_offset = 100;
  h.total_length = 20 + 8;
  ByteWriter w;
  ew::net::EthernetHeader eth;
  eth.ether_type = 0x0800;
  eth.serialize(w);
  h.serialize(w);
  w.fill(8, 0xab);
  ew::net::Frame f{ew::core::Timestamp{}, std::move(w).take()};
  const auto pkt = ew::net::decode_frame(f);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_FALSE(pkt->tcp.has_value());
  EXPECT_TRUE(pkt->ip.is_fragment());
}

TEST(Trace, SortByTimeIsStable) {
  ew::net::Trace trace;
  trace.add(ew::net::PacketBuilder{}.ts(ew::core::Timestamp{300}).build());
  trace.add(ew::net::PacketBuilder{}.ts(ew::core::Timestamp{100}).payload("a").build());
  trace.add(ew::net::PacketBuilder{}.ts(ew::core::Timestamp{100}).payload("bb").build());
  trace.sort_by_time();
  EXPECT_EQ(trace[0].timestamp.micros(), 100);
  EXPECT_LT(trace[0].data.size(), trace[1].data.size());  // stability preserved order
  EXPECT_EQ(trace[2].timestamp.micros(), 300);
}
