// Golden tests for the per-packet hot-path overhaul: every data-structure
// swap and the pipelined replay must be *behaviorally invisible*.
//
//   - the software-pipelined Probe::process(span) replay produces a
//     byte-identical export stream and identical counters to the one-frame
//     process() loop, across batch boundaries, junk frames and sampling;
//   - ShardedProbe stays byte-identical to the (pipelined) serial probe for
//     N ∈ {1, 2, 4, 8} shards;
//   - DayAggregate on FlatHashMap matches a std::unordered_map oracle and
//     survives split-and-merge without drift;
//   - the compiled rule matcher (interned exact map, reversed-label trie,
//     regex prefilter) agrees with a reference implementation of the old
//     matcher on randomized rule sets and adversarial domains.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/bytes.hpp"
#include "core/types.hpp"
#include "net/packet.hpp"
#include "probe/sharded_probe.hpp"
#include "services/catalog.hpp"
#include "services/regex.hpp"
#include "services/rules.hpp"
#include "storage/codec.hpp"
#include "synth/generator.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;
using ew::flow::FlowRecord;

namespace {

constexpr IPv4Address kResolver{10, 255, 255, 53};

/// A malformed or non-IPv4 frame with the given ethertype: exercises the
/// ipv6/decode-failure counting paths inside the pipelined loop.
ew::net::Frame junk_frame(std::uint16_t ethertype, std::size_t extra, Timestamp ts) {
  std::vector<std::byte> data(14 + extra, std::byte{0xab});
  data[12] = static_cast<std::byte>(ethertype >> 8);
  data[13] = static_cast<std::byte>(ethertype & 0xff);
  return {ts, std::move(data)};
}

/// Deterministic mixed workload: DNS-preceded TLS/HTTP conversations over
/// several clients, plus IPv6 frames, an ARP frame and a truncated runt
/// sprinkled through the timeline.
std::vector<ew::net::Frame> make_workload() {
  struct Site {
    IPv4Address ip;
    const char* name;
  };
  const Site sites[] = {
      {{93, 184, 216, 34}, "www.repubblica.it"},
      {{31, 13, 86, 36}, "edge-star.facebook.com"},
      {{173, 194, 11, 7}, "r3---sn.googlevideo.com"},
      {{198, 38, 120, 10}, "occ-1.nflxvideo.net"},
  };
  std::vector<ew::net::Frame> frames;
  for (int c = 0; c < 16; ++c) {
    const IPv4Address client{10, static_cast<std::uint8_t>(c % 2 == 0 ? 0 : 200), 7,
                             static_cast<std::uint8_t>(10 + c)};
    for (int k = 0; k < 3; ++k) {
      const auto& site = sites[static_cast<std::size_t>((c + k) % 4)];
      const std::int64_t start_us = 50'000'000LL + (c * 1103 + k * 17) * 1000LL;
      const IPv4Address addrs[] = {site.ip};
      frames.push_back(ew::synth::render_dns_response(client, kResolver, site.name, addrs,
                                                      Timestamp{start_us - 30'000}));
      ew::synth::ConversationSpec spec;
      spec.client = client;
      spec.server = site.ip;
      spec.client_port = static_cast<std::uint16_t>(42000 + c * 4 + k);
      spec.web = k == 1 ? ew::dpi::WebProtocol::kHttp : ew::dpi::WebProtocol::kTls;
      spec.server_name = site.name;
      spec.response_bytes = static_cast<std::size_t>(2000 + c * 311 + k * 701);
      spec.start = Timestamp{start_us};
      spec.rtt_us = 9'000 + c * 450;
      spec.teardown = (c + k) % 3 != 0;
      const auto conv = ew::synth::render_conversation(spec);
      frames.insert(frames.end(), conv.begin(), conv.end());
    }
    // Non-flow traffic between conversations.
    const std::int64_t t = 50'000'000LL + c * 997'000LL;
    frames.push_back(junk_frame(0x86DD, 48, Timestamp{t}));  // IPv6
    frames.push_back(junk_frame(0x0806, 28, Timestamp{t + 1}));  // ARP → decode failure
    frames.push_back({Timestamp{t + 2}, std::vector<std::byte>(6, std::byte{0x55})});  // runt
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const ew::net::Frame& a, const ew::net::Frame& b) {
                     return a.timestamp < b.timestamp;
                   });
  return frames;
}

std::vector<std::byte> encode_stream(const std::vector<FlowRecord>& records) {
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  return {w.view().begin(), w.view().end()};
}

std::vector<FlowRecord> sorted_by_seq(std::vector<FlowRecord> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.ingest_seq < b.ingest_seq;
                   });
  return records;
}

void expect_counters_equal(const ew::probe::Probe::Counters& a,
                           const ew::probe::Probe::Counters& b) {
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.decode_failures, b.decode_failures);
  EXPECT_EQ(a.ipv6_frames, b.ipv6_frames);
  EXPECT_EQ(a.sampled_out, b.sampled_out);
  EXPECT_EQ(a.dropped_offline, b.dropped_offline);
  EXPECT_EQ(a.dns_responses, b.dns_responses);
  EXPECT_EQ(a.records_exported, b.records_exported);
  EXPECT_EQ(a.records_named_by_dns, b.records_named_by_dns);
}

struct Replay {
  std::vector<FlowRecord> records;
  ew::probe::Probe::Counters counters;
};

/// Run the workload through a probe, feeding frames in batches of
/// `batch` (0 = one process(frame) call per frame).
Replay replay(const std::vector<ew::net::Frame>& frames, std::size_t batch,
              const ew::probe::ProbeConfig& cfg = {}) {
  Replay out;
  ew::probe::Probe probe(cfg,
                         [&out](FlowRecord&& r) { out.records.push_back(std::move(r)); });
  if (batch == 0) {
    for (const auto& f : frames) probe.process(f);
  } else {
    const std::span<const ew::net::Frame> all(frames);
    for (std::size_t i = 0; i < all.size(); i += batch) {
      probe.process(all.subspan(i, std::min(batch, all.size() - i)));
    }
  }
  probe.finish();
  out.counters = probe.counters();
  out.records = sorted_by_seq(std::move(out.records));
  return out;
}

}  // namespace

// ------------------------------------------------ pipelined replay golden

TEST(HotpathGolden, PipelinedReplayMatchesPerFrameReplay) {
  const auto frames = make_workload();
  const auto reference = replay(frames, 0);
  ASSERT_FALSE(reference.records.empty());
  EXPECT_GT(reference.counters.ipv6_frames, 0u);
  EXPECT_GT(reference.counters.decode_failures, 0u);

  const auto expected = encode_stream(reference.records);
  // Whole-trace span, single-frame spans, and awkward batch sizes that cut
  // the pipeline's lookahead mid-conversation must all be invisible.
  for (const std::size_t batch : {frames.size(), std::size_t{1}, std::size_t{2},
                                  std::size_t{7}, std::size_t{64}}) {
    const auto got = replay(frames, batch);
    EXPECT_EQ(encode_stream(got.records), expected) << "batch=" << batch;
    expect_counters_equal(got.counters, reference.counters);
  }
}

TEST(HotpathGolden, PipelinedReplayMatchesPerFrameUnderSampling) {
  const auto frames = make_workload();
  ew::probe::ProbeConfig cfg;
  cfg.sample_rate = 3;  // the pipeline decodes ahead; sampling must not drift
  const auto reference = replay(frames, 0, cfg);
  EXPECT_GT(reference.counters.sampled_out, 0u);
  const auto expected = encode_stream(reference.records);
  for (const std::size_t batch : {frames.size(), std::size_t{5}}) {
    const auto got = replay(frames, batch, cfg);
    EXPECT_EQ(encode_stream(got.records), expected) << "batch=" << batch;
    expect_counters_equal(got.counters, reference.counters);
  }
}

// --------------------------------------------------- sharded stream golden

TEST(HotpathGolden, ShardedStreamMatchesPipelinedSerialForEveryShardCount) {
  const auto frames = make_workload();
  const ew::probe::ProbeConfig cfg;
  const auto reference = replay(frames, frames.size(), cfg);
  const auto expected = encode_stream(reference.records);
  ASSERT_FALSE(expected.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    ew::probe::ShardedProbeConfig scfg;
    scfg.probe = cfg;
    scfg.shards = shards;
    scfg.queue_capacity = 64;
    ew::probe::ShardedProbe sp(scfg);
    for (const auto& f : frames) sp.ingest(f);
    EXPECT_EQ(encode_stream(sp.finish()), expected) << "shards=" << shards;
    const auto c = sp.counters();
    EXPECT_EQ(c.records_exported, reference.counters.records_exported) << "shards=" << shards;
    EXPECT_EQ(c.ipv6_frames, reference.counters.ipv6_frames) << "shards=" << shards;
    EXPECT_EQ(c.decode_failures, reference.counters.decode_failures) << "shards=" << shards;
  }
}

// -------------------------------------------------- day-aggregate golden

namespace {

struct OracleSub {
  std::uint64_t flows = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

}  // namespace

TEST(HotpathGolden, DayAggregateMatchesUnorderedMapOracle) {
  const auto frames = make_workload();
  const auto records = replay(frames, frames.size()).records;
  ASSERT_FALSE(records.empty());

  ew::analytics::DayAggregator aggregator({2015, 6, 10});
  std::unordered_map<std::uint32_t, OracleSub> oracle_subs;
  std::unordered_map<std::uint32_t, std::uint64_t> oracle_servers;
  for (const auto& r : records) {
    aggregator.add(r);
    auto& sub = oracle_subs[r.client_ip.value()];
    ++sub.flows;
    sub.bytes_up += r.up.bytes;
    sub.bytes_down += r.down.bytes;
    oracle_servers[r.server_ip.value()] += r.total_bytes();
  }
  const auto agg = std::move(aggregator).take();

  ASSERT_EQ(agg.subscribers.size(), oracle_subs.size());
  for (const auto& [ip, expected] : oracle_subs) {
    const auto it = agg.subscribers.find(IPv4Address{ip});
    ASSERT_NE(it, agg.subscribers.end());
    EXPECT_EQ(it->second.flows, expected.flows);
    EXPECT_EQ(it->second.bytes_up, expected.bytes_up);
    EXPECT_EQ(it->second.bytes_down, expected.bytes_down);
  }
  ASSERT_EQ(agg.server_ips.size(), oracle_servers.size());
  for (const auto& [ip, bytes] : oracle_servers) {
    const auto it = agg.server_ips.find(IPv4Address{ip});
    ASSERT_NE(it, agg.server_ips.end());
    EXPECT_EQ(it->second.bytes, bytes);
  }
}

TEST(HotpathGolden, DayAggregateSplitAndMergeMatchesSerial) {
  const auto frames = make_workload();
  const auto records = replay(frames, frames.size()).records;
  ASSERT_GT(records.size(), 4u);

  ew::analytics::DayAggregator whole({2015, 6, 10});
  for (const auto& r : records) whole.add(r);
  const auto serial = std::move(whole).take();

  // Split at an arbitrary point, aggregate independently, merge: the
  // FlatHashMap-backed maps must land on identical totals regardless of
  // which partial saw a subscriber first.
  const std::size_t cut = records.size() / 3;
  ew::analytics::DayAggregator left({2015, 6, 10});
  ew::analytics::DayAggregator right({2015, 6, 10});
  for (std::size_t i = 0; i < records.size(); ++i) {
    (i < cut ? left : right).add(records[i]);
  }
  auto merged = std::move(left).take();
  merged.merge(std::move(right).take());

  EXPECT_EQ(merged.web_bytes, serial.web_bytes);
  EXPECT_EQ(merged.domain_bytes, serial.domain_bytes);
  EXPECT_EQ(merged.unclassified_domain_bytes, serial.unclassified_domain_bytes);
  ASSERT_EQ(merged.subscribers.size(), serial.subscribers.size());
  for (const auto& [ip, sub] : serial.subscribers) {
    const auto it = merged.subscribers.find(ip);
    ASSERT_NE(it, merged.subscribers.end());
    EXPECT_EQ(it->second.flows, sub.flows);
    EXPECT_EQ(it->second.bytes_up, sub.bytes_up);
    EXPECT_EQ(it->second.bytes_down, sub.bytes_down);
    for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
      EXPECT_EQ(it->second.per_service[s].flows, sub.per_service[s].flows);
      EXPECT_EQ(it->second.per_service[s].total(), sub.per_service[s].total());
    }
  }
  ASSERT_EQ(merged.server_ips.size(), serial.server_ips.size());
  for (const auto& [ip, stats] : serial.server_ips) {
    const auto it = merged.server_ips.find(ip);
    ASSERT_NE(it, merged.server_ips.end());
    EXPECT_EQ(it->second.service_mask, stats.service_mask);
    EXPECT_EQ(it->second.bytes, stats.bytes);
  }
}

// ------------------------------------------------ compiled matcher golden

namespace {

/// Reference reimplementation of the pre-overhaul matcher: allocating
/// lowercase normalize, std::unordered_map exact probe, one map probe per
/// label boundary for suffixes (longest wins), regexes with no prefilter.
class LegacyRuleEngine {
 public:
  void add_exact(std::string_view domain, std::string_view service) {
    exact_[normalize(domain)] = std::string(service);
  }
  void add_suffix(std::string_view suffix, std::string_view service) {
    suffix_[normalize(suffix)] = std::string(service);
  }
  bool add_regex(std::string_view pattern, std::string_view service) {
    auto re = ew::services::Regex::compile(pattern);
    if (!re) return false;
    regex_.push_back({std::move(*re), std::string(service)});
    return true;
  }

  [[nodiscard]] std::optional<std::string_view> classify(std::string_view domain) const {
    const std::string name = normalize(domain);
    if (const auto it = exact_.find(name); it != exact_.end()) return it->second;
    for (std::size_t pos = 0; pos < name.size();) {
      if (const auto it = suffix_.find(name.substr(pos)); it != suffix_.end()) {
        return it->second;
      }
      const auto dot = name.find('.', pos);
      if (dot == std::string::npos) break;
      pos = dot + 1;
    }
    for (const auto& rule : regex_) {
      if (rule.re.search(name)) return rule.service;
    }
    return std::nullopt;
  }

 private:
  static std::string normalize(std::string_view domain) {
    std::string out(domain);
    for (char& c : out) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (!out.empty() && out.back() == '.') out.pop_back();
    return out;
  }

  struct RegexRule {
    ew::services::Regex re;
    std::string service;
  };
  std::unordered_map<std::string, std::string> exact_;
  std::unordered_map<std::string, std::string> suffix_;
  std::vector<RegexRule> regex_;
};

void expect_engines_agree(const ew::services::RuleEngine& compiled,
                          const LegacyRuleEngine& legacy,
                          const std::vector<std::string>& domains) {
  for (const auto& d : domains) {
    const auto a = compiled.classify(d);
    const auto b = legacy.classify(d);
    EXPECT_EQ(a.has_value(), b.has_value()) << "domain '" << d << "'";
    if (a && b) EXPECT_EQ(*a, *b) << "domain '" << d << "'";
  }
}

}  // namespace

TEST(HotpathGolden, CompiledMatcherMatchesLegacyOnCuratedEdgeCases) {
  ew::services::RuleEngine compiled;
  LegacyRuleEngine legacy;
  const auto both = [&](auto fn) {
    fn(compiled);
    fn(legacy);
  };
  both([](auto& e) { e.add_exact("netflix.com", "NetflixFront"); });
  both([](auto& e) { e.add_suffix("netflix.com", "Netflix"); });
  both([](auto& e) { e.add_suffix("video.netflix.com", "NetflixVideo"); });  // longer wins
  both([](auto& e) { e.add_suffix("fbcdn.net", "Facebook"); });
  both([](auto& e) { e.add_suffix("net", "NetTld"); });  // one-label suffix rule
  both([](auto& e) { e.add_exact("a", "SingleLabel"); });
  both([](auto& e) { e.add_regex("^r[0-9]+---sn-[a-z0-9]+\\.googlevideo\\.com$", "YouTube"); });

  const std::vector<std::string> domains = {
      "netflix.com",            // exact beats the identical suffix
      "NETFLIX.COM",            // case-folded exact
      "netflix.com.",           // trailing dot stripped, then exact
      "www.netflix.com",        // plain suffix
      "cdn.video.netflix.com",  // longest suffix wins over netflix.com
      "video.netflix.com",      // suffix rule matching at its own length
      "notnetflix.com",         // label boundary: must NOT match netflix.com
      "xnetflix.com",
      "netflix.com.evil.example",  // suffix only at the tail
      "static.xx.fbcdn.net",
      "whatsapp.net",           // covered by the "net" TLD rule
      "net",                    // the TLD itself
      "a",                      // single-label exact
      "a.",                     // ... with trailing dot
      "",                       // empty input
      ".",                      // dot only
      "..",                     // consecutive dots
      ".netflix.com",           // leading dot: empty first label
      "r3---sn-4g5e6nsz.googlevideo.com",  // regex hit
      "R3---SN-ABC123.GOOGLEVIDEO.COM",    // regex after case folding
      "r3---sn-4g5e6nsz.googlevideo.com.x",  // anchored regex must miss
      "example.org",
  };
  expect_engines_agree(compiled, legacy, domains);
}

TEST(HotpathGolden, CompiledMatcherMatchesLegacyOnRandomizedRulesAndDomains) {
  // Deterministic xorshift so failures reproduce.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  static constexpr const char* kLabels[] = {"cdn", "static", "edge", "video", "img",
                                            "api", "x1", "srv-9", "media", "login"};
  static constexpr const char* kSlds[] = {"netflix", "fbcdn", "googlevideo", "shop",
                                          "stream", "example"};
  static constexpr const char* kTlds[] = {"com", "net", "it", "org"};
  const auto random_domain = [&](std::size_t max_depth) {
    std::string d;
    const std::size_t depth = next() % max_depth;
    for (std::size_t i = 0; i < depth; ++i) {
      d += kLabels[next() % std::size(kLabels)];
      d += '.';
    }
    d += kSlds[next() % std::size(kSlds)];
    d += '.';
    d += kTlds[next() % std::size(kTlds)];
    if (next() % 8 == 0) d += '.';      // trailing dot
    if (next() % 4 == 0) {              // random upper-casing
      for (char& c : d) {
        if (next() % 3 == 0 && c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
      }
    }
    return d;
  };

  for (int round = 0; round < 8; ++round) {
    ew::services::RuleEngine compiled;
    LegacyRuleEngine legacy;
    for (int i = 0; i < 12; ++i) {
      const std::string target = random_domain(3);
      const std::string service = "svc" + std::to_string(i % 5);
      if (i % 3 == 0) {
        compiled.add_exact(target, service);
        legacy.add_exact(target, service);
      } else {
        compiled.add_suffix(target, service);
        legacy.add_suffix(target, service);
      }
    }
    std::vector<std::string> domains;
    for (int i = 0; i < 400; ++i) domains.push_back(random_domain(5));
    expect_engines_agree(compiled, legacy, domains);
  }
}
