// The rollup store and query engine (query::): .ewr format roundtrip and
// damage detection, staleness-driven incremental builds sharing the lake's
// FileIdentity, column projection, and — the acceptance criterion — golden
// comparisons proving that top-k / distinct / quantile answers from
// rollups match exact full-scan recomputation within the sketches'
// documented error bounds on paper-scenario synthetic data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <vector>

#include "analytics/figures.hpp"
#include "analytics/parallel.hpp"
#include "core/thread_pool.hpp"
#include "query/engine.hpp"
#include "query/figures.hpp"
#include "query/rollup.hpp"
#include "query/store.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
using ew::core::CivilDate;
using ew::core::Errc;
using ew::query::DayRollup;
using ew::query::Dimension;
using ew::query::RollupStore;

namespace {

/// Shared corpus: a two-ISO-week, two-month slice of the paper scenario in
/// a lake, the exact full-scan aggregates, and a fully built rollup store.
/// Built once — scenario generation dominates the suite's runtime.
struct Corpus {
  std::filesystem::path root;
  ew::synth::Scenario scenario;
  std::unique_ptr<ew::storage::DataLake> lake;
  std::unique_ptr<RollupStore> store;
  std::vector<CivilDate> days;
  std::vector<ew::analytics::DayAggregate> aggregates;  ///< full-scan truth
  ew::query::BuildReport first_build;

  ~Corpus() {
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
  }
};

Corpus& corpus() {
  static Corpus* c = [] {
    auto* corpus = new Corpus;
    corpus->root = std::filesystem::path(::testing::TempDir()) / "ew_query_corpus";
    std::error_code ec;
    std::filesystem::remove_all(corpus->root, ec);
    corpus->scenario = ew::synth::build_paper_scenario(11, 0.1);
    corpus->lake = std::make_unique<ew::storage::DataLake>(corpus->root / "lake");
    const ew::synth::WorkloadGenerator gen{corpus->scenario};
    // 2015-06-22 is a Monday: two full ISO weeks straddling a month edge,
    // so week and month bucketing are both non-trivial.
    const std::int64_t start = ew::core::days_from_civil({2015, 6, 22});
    for (std::int64_t z = start; z < start + 14; ++z) {
      const CivilDate day = ew::core::civil_from_days(z);
      corpus->days.push_back(day);
      EXPECT_TRUE(corpus->lake->append(day, gen.day_records(day)));
    }
    ew::core::ThreadPool pool(4);
    for (const CivilDate day : corpus->days) {
      corpus->aggregates.push_back(ew::analytics::aggregate_day(*corpus->lake, day).aggregate);
    }
    corpus->store = std::make_unique<RollupStore>(
        corpus->root / "rollups", *corpus->lake, ew::services::ServiceCatalog::standard(),
        corpus->scenario.rib.get());
    corpus->first_build = corpus->store->build(pool);
    return corpus;
  }();
  return *c;
}

/// Exact distinct subscribers that used `service` on at least one of the
/// given aggregates (§4.1 threshold) — what the month HLL approximates.
std::size_t exact_distinct_users(std::span<const ew::analytics::DayAggregate> days,
                                 ew::services::ServiceId service) {
  const auto& catalog = ew::services::ServiceCatalog::standard();
  std::set<std::uint32_t> users;
  for (const auto& day : days) {
    for (const auto& [ip, sub] : day.subscribers) {
      if (ew::analytics::uses_service(sub, catalog, service)) users.insert(ip.value());
    }
  }
  return users.size();
}

double exact_nearest_rank(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(values.size()))));
  return values[k - 1];
}

}  // namespace

// ----------------------------------------------------------- .ewr format

TEST(Rollup, EncodeDecodeRoundtrip) {
  auto& c = corpus();
  for (std::size_t d = 0; d < ew::query::kDimensionCount; ++d) {
    const auto dim = static_cast<Dimension>(d);
    const DayRollup rollup = ew::query::build_day_rollup(
        c.aggregates[0], dim, ew::services::ServiceCatalog::standard(), c.scenario.rib.get());
    const auto bytes = ew::query::encode_rollup(rollup);
    const auto back = ew::query::decode_rollup(bytes);
    ASSERT_TRUE(back.has_value()) << ew::query::to_string(dim);
    // encode() is deterministic in the rollup contents, so byte equality of
    // a re-encode is content equality of the decode.
    EXPECT_EQ(ew::query::encode_rollup(*back), bytes) << ew::query::to_string(dim);
    EXPECT_FALSE(back->groups.empty());
  }
}

TEST(Rollup, ColumnProjectionSkipsSketchSections) {
  auto& c = corpus();
  const DayRollup full = ew::query::build_day_rollup(c.aggregates[0], Dimension::kService);
  const auto bytes = ew::query::encode_rollup(full);

  const auto counters_only = ew::query::decode_rollup(bytes, ew::query::kColCounters);
  ASSERT_TRUE(counters_only.has_value());
  EXPECT_EQ(counters_only->columns, ew::query::kColCounters);
  ASSERT_EQ(counters_only->groups.size(), full.groups.size());
  for (const auto& [key, group] : counters_only->groups) {
    EXPECT_EQ(group.flows, full.groups.at(key).flows);
    EXPECT_EQ(group.bytes_up, full.groups.at(key).bytes_up);
    EXPECT_EQ(group.bytes_down, full.groups.at(key).bytes_down);
    EXPECT_TRUE(group.clients.empty());  // projected out, never materialized
    EXPECT_TRUE(group.rtt_ms.empty());
  }

  const auto rtt_only = ew::query::decode_rollup(bytes, ew::query::kColRtt);
  ASSERT_TRUE(rtt_only.has_value());
  for (const auto& [key, group] : rtt_only->groups) {
    EXPECT_EQ(group.rtt_ms.count(), full.groups.at(key).rtt_ms.count());
    EXPECT_EQ(group.flows, 0u);
  }
}

TEST(Rollup, DetectsDamage) {
  auto& c = corpus();
  const DayRollup rollup = ew::query::build_day_rollup(c.aggregates[0], Dimension::kService);
  auto bytes = ew::query::encode_rollup(rollup);

  {  // flipped byte inside a section body -> CRC mismatch
    auto bad = bytes;
    bad[bytes.size() / 2] ^= std::byte{0x40};
    const auto r = ew::query::decode_rollup(bad);
    EXPECT_FALSE(r.has_value());
  }
  {  // torn write: trailer missing -> kTruncated
    const auto torn = std::vector<std::byte>(bytes.begin(), bytes.end() - 20);
    const auto r = ew::query::decode_rollup(torn);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error(), Errc::kTruncated);
  }
  {  // foreign file
    auto alien = bytes;
    alien[0] = std::byte{'X'};
    EXPECT_EQ(ew::query::decode_rollup(alien).error(), Errc::kBadMagic);
  }
  {  // future version
    auto vnext = bytes;
    vnext[4] = std::byte{9};
    EXPECT_EQ(ew::query::decode_rollup(vnext).error(), Errc::kBadVersion);
  }
}

// ------------------------------------------------- store build / staleness

TEST(RollupStore, BuildIsIncrementalViaFileIdentity) {
  auto& c = corpus();
  const std::size_t files = c.days.size() * ew::query::kDimensionCount;
  EXPECT_EQ(c.first_build.built, files);
  EXPECT_EQ(c.first_build.failed, 0u);

  // Second pass: everything fresh, nothing re-aggregated.
  ew::core::ThreadPool pool(4);
  const auto again = c.store->build(pool);
  EXPECT_EQ(again.built, 0u);
  EXPECT_EQ(again.reused, files);

  // Appending to one lake day changes its identity; exactly that day's
  // rollups (all dimensions) rebuild.
  const CivilDate day = c.days[3];
  const auto before = c.lake->day_identity(day);
  const ew::synth::WorkloadGenerator gen{c.scenario};
  ASSERT_TRUE(c.lake->append(day, gen.day_records(c.days[4])));
  EXPECT_NE(c.lake->day_identity(day), before);
  EXPECT_FALSE(c.store->fresh(day, Dimension::kService));

  const auto incremental = c.store->build(pool);
  EXPECT_EQ(incremental.built, ew::query::kDimensionCount);
  EXPECT_EQ(incremental.reused, files - ew::query::kDimensionCount);
  EXPECT_TRUE(c.store->fresh(day, Dimension::kService));

  // Restore the corpus day for the golden tests below (content changed, so
  // rebuild from the refreshed aggregate too).
  c.aggregates[3] = ew::analytics::aggregate_day(*c.lake, day).aggregate;
}

TEST(RollupStore, FsckAndStoreShareOneIdentity) {
  auto& c = corpus();
  const CivilDate day = c.days[0];
  const auto via_lake = c.lake->day_identity(day);
  const auto via_fsck = c.lake->fsck_day(day).identity;
  const auto direct = ew::storage::file_identity(
      c.lake->root() / ew::storage::DataLake::day_filename(day));
  EXPECT_EQ(via_lake, via_fsck);
  EXPECT_EQ(via_lake, direct);
  EXPECT_TRUE(via_lake.exists());
  EXPECT_GT(via_lake.seal_seq, 0u);  // sealed v2 file carries its receipt

  EXPECT_FALSE(ew::storage::file_identity(c.lake->root() / "nope.ewl").exists());
}

TEST(RollupStore, LoadErrorsAreTyped) {
  auto& c = corpus();
  EXPECT_EQ(c.store->load({2030, 1, 1}, Dimension::kService).error(), Errc::kNotFound);

  // A corrupted rollup file is reported, and build() heals it.
  const CivilDate day = c.days[1];
  const auto path = c.store->rollup_path(day, Dimension::kProtocol);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path) / 2));
    f.write("\xde\xad", 2);
  }
  EXPECT_FALSE(c.store->load(day, Dimension::kProtocol).has_value());
  EXPECT_FALSE(c.store->fresh(day, Dimension::kProtocol));
  ew::core::ThreadPool pool(2);
  const auto report = c.store->build(pool);
  EXPECT_GE(report.built, 1u);
  EXPECT_TRUE(c.store->load(day, Dimension::kProtocol).has_value());
}

// ------------------------------------------------------ golden queries

TEST(QueryGolden, ExactCountersMatchFullScan) {
  auto& c = corpus();
  ew::query::QuerySpec spec;
  spec.metric = ew::query::Metric::kBytes;
  spec.dimension = Dimension::kService;
  spec.from = c.days.front();
  spec.to = c.days.back();
  const auto result = ew::query::run_query(*c.store, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.missing_days.empty());
  EXPECT_EQ(result.days_merged, c.days.size());
  EXPECT_EQ(result.columns_loaded, ew::query::kColCounters);

  // Full-scan truth: per-service byte totals over every subscriber-day.
  std::map<std::uint32_t, std::uint64_t> exact;
  for (const auto& agg : c.aggregates) {
    for (const auto& [ip, sub] : agg.subscribers) {
      for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
        exact[static_cast<std::uint32_t>(s)] += sub.per_service[s].total();
      }
    }
  }
  for (const auto& row : result.rows) {
    EXPECT_DOUBLE_EQ(row.value, static_cast<double>(exact[row.key])) << "service " << row.key;
    EXPECT_DOUBLE_EQ(row.error_bound, 0.0);
  }
  // Rows are value-descending.
  for (std::size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_GE(result.rows[i - 1].value, result.rows[i].value);
  }
}

TEST(QueryGolden, DistinctSubscribersWithinHllBound) {
  auto& c = corpus();
  // "Top-10 services by distinct subscribers per month" for June 2015.
  std::vector<ew::analytics::DayAggregate> june;
  for (std::size_t i = 0; i < c.days.size(); ++i) {
    if (c.days[i].month == 6) june.push_back(c.aggregates[i]);
  }
  ASSERT_FALSE(june.empty());

  ew::core::ThreadPool pool(4);
  const auto top =
      ew::query::top_services_by_subscribers(*c.store, ew::core::MonthIndex{2015, 6}, 10, &pool);
  ASSERT_EQ(top.size(), 10u);
  for (const auto& row : top) {
    const auto service = static_cast<ew::services::ServiceId>(row.key);
    const double exact = static_cast<double>(exact_distinct_users(june, service));
    ASSERT_GT(exact, 0.0);
    EXPECT_LE(std::abs(row.value - exact), row.error_bound * exact)
        << "service " << ew::services::to_string(service) << ": est " << row.value
        << " exact " << exact;
  }
  // The most popular service is unambiguous at this separation.
  std::uint32_t exact_top = 0;
  std::size_t exact_top_users = 0;
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    const auto users = exact_distinct_users(june, static_cast<ew::services::ServiceId>(s));
    if (users > exact_top_users) {
      exact_top_users = users;
      exact_top = static_cast<std::uint32_t>(s);
    }
  }
  EXPECT_EQ(top.front().key, exact_top);
}

TEST(QueryGolden, WeeklyRttQuantileWithinSketchAccuracy) {
  auto& c = corpus();
  const auto service = ew::services::ServiceId::kFacebook;
  ew::core::ThreadPool pool(4);
  const auto rows = ew::query::weekly_rtt_quantile(*c.store, service, c.days.front(),
                                                   c.days.back(), 0.5, &pool);
  ASSERT_EQ(rows.size(), 2u);  // two ISO weeks

  for (const auto& row : rows) {
    // Exact: concatenate the week's raw RTT samples, take the nearest-rank
    // median.
    std::vector<double> samples;
    const std::int64_t monday = ew::core::days_from_civil(row.bucket);
    for (std::size_t i = 0; i < c.days.size(); ++i) {
      const std::int64_t z = ew::core::days_from_civil(c.days[i]);
      if (z < monday || z >= monday + 7) continue;
      const auto& day_samples =
          c.aggregates[i].rtt_min_ms[static_cast<std::size_t>(service)];
      samples.insert(samples.end(), day_samples.begin(), day_samples.end());
    }
    ASSERT_FALSE(samples.empty());
    const double exact = exact_nearest_rank(samples, 0.5);
    EXPECT_LE(std::abs(row.value - exact), row.error_bound * exact)
        << "week " << row.bucket.to_string() << ": est " << row.value << " exact " << exact;
    EXPECT_DOUBLE_EQ(row.error_bound, ew::core::QuantileSketch::kDefaultAccuracy);
  }
}

TEST(QueryGolden, ServerAsnDistinctServersWithinHllBound) {
  auto& c = corpus();
  ew::query::QuerySpec spec;
  spec.metric = ew::query::Metric::kDistinctServers;
  spec.dimension = Dimension::kServerAsn;
  spec.from = c.days.front();
  spec.to = c.days.back();
  const auto result = ew::query::run_query(*c.store, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.rows.empty());

  // Exact distinct server IPs per origin ASN over the whole range.
  std::map<std::uint32_t, std::set<std::uint32_t>> exact;
  for (const auto& agg : c.aggregates) {
    for (const auto& [ip, stats] : agg.server_ips) {
      exact[c.scenario.rib->origin_asn(ip).value_or(0)].insert(ip.value());
    }
  }
  for (const auto& row : result.rows) {
    const double truth = static_cast<double>(exact[row.key].size());
    ASSERT_GT(truth, 0.0) << "asn " << row.key;
    EXPECT_LE(std::abs(row.value - truth), std::max(1.0, row.error_bound * truth))
        << "asn " << row.key;
  }
}

TEST(QueryGolden, VolumeQuantilePerTechWithinSketchAccuracy) {
  auto& c = corpus();
  ew::query::QuerySpec spec;
  spec.metric = ew::query::Metric::kVolumeQuantile;
  spec.from = c.days.front();
  spec.to = c.days.back();
  spec.quantile = 0.9;
  const auto result = ew::query::run_query(*c.store, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.rows.empty());

  for (const auto& row : result.rows) {
    std::vector<double> samples;  // one per active subscriber-day of the tech
    for (const auto& agg : c.aggregates) {
      for (const auto& [ip, sub] : agg.subscribers) {
        if (!sub.active({}) || static_cast<std::uint32_t>(sub.access) != row.key) continue;
        samples.push_back(static_cast<double>(sub.bytes_down));
      }
    }
    ASSERT_FALSE(samples.empty());
    const double exact = exact_nearest_rank(samples, 0.9);
    EXPECT_LE(std::abs(row.value - exact), row.error_bound * exact) << "tech " << row.key;
  }
}

TEST(QueryGolden, ProtocolSharesMatchFullScanExactly) {
  auto& c = corpus();
  ew::core::ThreadPool pool(4);
  const auto from_rollups =
      ew::query::protocol_shares(*c.store, c.days.front(), c.days.back(), &pool);
  const auto from_scan = ew::analytics::protocol_shares(c.aggregates);
  ASSERT_EQ(from_rollups.size(), from_scan.size());  // June + July
  for (std::size_t m = 0; m < from_scan.size(); ++m) {
    EXPECT_EQ(from_rollups[m].month, from_scan[m].month);
    for (std::size_t p = 0; p < ew::analytics::kWebProtocolCount; ++p) {
      // The rollup carries the same u64 byte counters the scan sums, so the
      // derived shares are bit-identical.
      EXPECT_DOUBLE_EQ(from_rollups[m].share_pct[p], from_scan[m].share_pct[p])
          << "month " << from_scan[m].month.to_string() << " protocol " << p;
    }
  }
}

TEST(QueryGolden, VolumeTrendMatchesFullScan) {
  auto& c = corpus();
  const auto from_rollups = ew::query::volume_trend(*c.store, c.days.front(), c.days.back());
  const auto from_scan = ew::analytics::volume_trend(c.aggregates);
  ASSERT_EQ(from_rollups.size(), from_scan.size());
  for (std::size_t m = 0; m < from_scan.size(); ++m) {
    EXPECT_EQ(from_rollups[m].month, from_scan[m].month);
    for (std::size_t t = 0; t < ew::analytics::kAccessTechCount; ++t) {
      // Averages agree to float summation order (rollups sum exact u64s,
      // the scan accumulates doubles subscriber by subscriber).
      EXPECT_NEAR(from_rollups[m].down_mb[t], from_scan[m].down_mb[t],
                  1e-9 * std::max(1.0, from_scan[m].down_mb[t]));
      EXPECT_NEAR(from_rollups[m].up_mb[t], from_scan[m].up_mb[t],
                  1e-9 * std::max(1.0, from_scan[m].up_mb[t]));
      EXPECT_EQ(from_rollups[m].subscribers[t], from_scan[m].subscribers[t]);
    }
  }
}

TEST(QueryEngine, MissingDaysAreReportedNotInvented) {
  auto& c = corpus();
  ew::query::QuerySpec spec;
  spec.metric = ew::query::Metric::kFlows;
  spec.from = c.days.front();
  spec.to = ew::core::civil_from_days(ew::core::days_from_civil(c.days.back()) + 3);
  const auto result = ew::query::run_query(*c.store, spec);
  EXPECT_EQ(result.missing_days.size(), 3u);
  EXPECT_EQ(result.days_merged, c.days.size());

  // An empty range yields an empty result, not an error.
  ew::query::QuerySpec empty = spec;
  empty.from = {2031, 1, 1};
  empty.to = {2031, 1, 5};
  const auto nothing = ew::query::run_query(*c.store, empty);
  EXPECT_TRUE(nothing.rows.empty());
  EXPECT_EQ(nothing.missing_days.size(), 5u);
}
