// DNS message parsing (incl. compression) and DN-Hunter cache behaviour.
#include <gtest/gtest.h>

#include "core/bytes.hpp"
#include "dns/dnhunter.hpp"
#include "dns/message.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;

namespace {
Timestamp at(std::int64_t seconds) { return Timestamp::from_seconds(seconds); }
}  // namespace

TEST(DnsMessage, SerializeParseRoundTrip) {
  const IPv4Address addrs[] = {IPv4Address{31, 13, 86, 36}, IPv4Address{31, 13, 86, 37}};
  const auto msg = ew::dns::make_a_response(0x1234, "Facebook.COM.", addrs, 60);
  const auto wire = ew::dns::serialize(msg);
  const auto back = ew::dns::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_response);
  EXPECT_EQ(back->id, 0x1234);
  ASSERT_EQ(back->questions.size(), 1u);
  EXPECT_EQ(back->questions[0].name, "facebook.com");
  ASSERT_EQ(back->answers.size(), 2u);
  EXPECT_EQ(back->answers[0].type, ew::dns::RecordType::kA);
  EXPECT_EQ(back->answers[0].address, addrs[0]);
  EXPECT_EQ(back->answers[1].address, addrs[1]);
  EXPECT_EQ(back->answers[0].ttl, 60u);
}

TEST(DnsMessage, CnameChainRoundTrip) {
  ew::dns::Message msg;
  msg.id = 7;
  msg.is_response = true;
  msg.questions.push_back({"www.netflix.com", 1, 1});
  ew::dns::Answer cname;
  cname.name = "www.netflix.com";
  cname.type = ew::dns::RecordType::kCname;
  cname.cname = "apex.nflxvideo.net";
  cname.ttl = 300;
  msg.answers.push_back(cname);
  ew::dns::Answer a;
  a.name = "apex.nflxvideo.net";
  a.type = ew::dns::RecordType::kA;
  a.address = IPv4Address{45, 57, 3, 1};
  msg.answers.push_back(a);

  const auto back = ew::dns::parse(ew::dns::serialize(msg));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->answers.size(), 2u);
  EXPECT_EQ(back->answers[0].cname, "apex.nflxvideo.net");
  EXPECT_EQ(back->answers[1].address, (IPv4Address{45, 57, 3, 1}));
}

TEST(DnsMessage, ParsesCompressedNames) {
  // Hand-built response: question "a.example.com", answer name via pointer
  // to offset 12 (question name), A record.
  ew::core::ByteWriter w;
  w.u16(0xabcd);  // id
  w.u16(0x8000);  // QR=1
  w.u16(1);       // QDCOUNT
  w.u16(1);       // ANCOUNT
  w.u16(0);
  w.u16(0);
  // question name at offset 12
  w.u8(1);
  w.string("a");
  w.u8(7);
  w.string("example");
  w.u8(3);
  w.string("com");
  w.u8(0);
  w.u16(1);  // qtype A
  w.u16(1);  // qclass IN
  // answer: pointer to offset 12
  w.u8(0xc0);
  w.u8(12);
  w.u16(1);  // type A
  w.u16(1);  // class
  w.u32(120);
  w.u16(4);
  w.u32(IPv4Address{93, 184, 216, 34}.value());

  const auto msg = ew::dns::parse(w.view());
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->answers.size(), 1u);
  EXPECT_EQ(msg->answers[0].name, "a.example.com");
  EXPECT_EQ(msg->answers[0].address, (IPv4Address{93, 184, 216, 34}));
}

TEST(DnsMessage, RejectsPointerLoops) {
  ew::core::ByteWriter w;
  w.u16(1);
  w.u16(0x8000);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  // Name at offset 12 is a pointer to itself.
  w.u8(0xc0);
  w.u8(12);
  w.u16(1);
  w.u16(1);
  EXPECT_FALSE(ew::dns::parse(w.view()).has_value());
}

TEST(DnsMessage, RejectsTruncated) {
  const auto msg =
      ew::dns::make_a_response(1, "x.com", std::vector<IPv4Address>{IPv4Address{1, 2, 3, 4}});
  auto wire = ew::dns::serialize(msg);
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(ew::dns::parse(wire).has_value());
}

TEST(DnsMessage, NormalizeName) {
  EXPECT_EQ(ew::dns::normalize_name("WWW.Google.COM."), "www.google.com");
  EXPECT_EQ(ew::dns::normalize_name(""), "");
  EXPECT_EQ(ew::dns::normalize_name("."), "");
}

TEST(DnsMessage, UnknownRecordTypesAreSkippedNotFatal) {
  ew::dns::Message msg;
  msg.id = 9;
  msg.is_response = true;
  msg.questions.push_back({"x.org", 16, 1});  // TXT question
  ew::dns::Answer txt;
  txt.name = "x.org";
  txt.type = ew::dns::RecordType::kOther;
  msg.answers.push_back(txt);
  const auto back = ew::dns::parse(ew::dns::serialize(msg));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->answers.size(), 1u);
  EXPECT_EQ(back->answers[0].type, ew::dns::RecordType::kOther);
}

// ------------------------------------------------------------- DN-Hunter

TEST(DnHunter, LabelsFlowAfterResolution) {
  ew::dns::DnHunter hunter;
  const IPv4Address client{10, 0, 0, 5};
  const IPv4Address server{31, 13, 86, 36};
  const IPv4Address addrs[] = {server};
  hunter.observe_response(client, ew::dns::make_a_response(1, "instagram.com", addrs), at(100));

  const auto name = hunter.lookup(client, server, at(105));
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "instagram.com");
  // Another client did not resolve it.
  EXPECT_FALSE(hunter.lookup(IPv4Address{10, 0, 0, 6}, server, at(105)).has_value());
}

TEST(DnHunter, CnameChainMapsToQuestionName) {
  ew::dns::DnHunter hunter;
  const IPv4Address client{10, 0, 0, 5};
  ew::dns::Message msg;
  msg.id = 2;
  msg.is_response = true;
  msg.questions.push_back({"www.netflix.com", 1, 1});
  ew::dns::Answer c1;
  c1.name = "www.netflix.com";
  c1.type = ew::dns::RecordType::kCname;
  c1.cname = "www.dradis.netflix.com";
  msg.answers.push_back(c1);
  ew::dns::Answer c2;
  c2.name = "www.dradis.netflix.com";
  c2.type = ew::dns::RecordType::kCname;
  c2.cname = "edge.nflxvideo.net";
  msg.answers.push_back(c2);
  ew::dns::Answer a;
  a.name = "edge.nflxvideo.net";
  a.type = ew::dns::RecordType::kA;
  a.address = IPv4Address{45, 57, 3, 9};
  msg.answers.push_back(a);

  hunter.observe_response(client, msg, at(10));
  const auto name = hunter.lookup(client, IPv4Address{45, 57, 3, 9}, at(11));
  ASSERT_TRUE(name.has_value());
  // The user asked for www.netflix.com; that is the service-relevant name.
  EXPECT_EQ(*name, "www.netflix.com");
}

TEST(DnHunter, EntriesExpireByTtl) {
  ew::dns::DnHunterConfig cfg;
  cfg.entry_ttl_micros = 60 * Timestamp::kMicrosPerSecond;
  ew::dns::DnHunter hunter{cfg};
  const IPv4Address client{10, 0, 0, 1};
  const IPv4Address server{1, 2, 3, 4};
  const IPv4Address addrs[] = {server};
  hunter.observe_response(client, ew::dns::make_a_response(1, "x.com", addrs), at(0));
  EXPECT_TRUE(hunter.lookup(client, server, at(59)).has_value());
  EXPECT_FALSE(hunter.lookup(client, server, at(61)).has_value());
  EXPECT_EQ(hunter.counters().expired, 1u);
  EXPECT_EQ(hunter.size(), 0u);  // expired entry was removed
}

TEST(DnHunter, LruEvictsOldestWhenFull) {
  ew::dns::DnHunterConfig cfg;
  cfg.max_entries_per_client = 3;
  ew::dns::DnHunter hunter{cfg};
  const IPv4Address client{10, 0, 0, 1};
  auto respond = [&](const char* name, IPv4Address addr, std::int64_t t) {
    const IPv4Address addrs[] = {addr};
    hunter.observe_response(client, ew::dns::make_a_response(1, name, addrs), at(t));
  };
  respond("a.com", IPv4Address{1, 0, 0, 1}, 1);
  respond("b.com", IPv4Address{1, 0, 0, 2}, 2);
  respond("c.com", IPv4Address{1, 0, 0, 3}, 3);
  // Touch a.com so b.com becomes the LRU victim.
  EXPECT_TRUE(hunter.lookup(client, IPv4Address{1, 0, 0, 1}, at(4)).has_value());
  respond("d.com", IPv4Address{1, 0, 0, 4}, 5);
  EXPECT_EQ(hunter.size(), 3u);
  EXPECT_FALSE(hunter.lookup(client, IPv4Address{1, 0, 0, 2}, at(6)).has_value());
  EXPECT_TRUE(hunter.lookup(client, IPv4Address{1, 0, 0, 1}, at(6)).has_value());
  EXPECT_TRUE(hunter.lookup(client, IPv4Address{1, 0, 0, 4}, at(6)).has_value());
  EXPECT_EQ(hunter.counters().lru_evictions, 1u);
}

TEST(DnHunter, ReResolutionUpdatesName) {
  ew::dns::DnHunter hunter;
  const IPv4Address client{10, 0, 0, 1};
  const IPv4Address server{5, 5, 5, 5};
  const IPv4Address addrs[] = {server};
  hunter.observe_response(client, ew::dns::make_a_response(1, "old.com", addrs), at(0));
  hunter.observe_response(client, ew::dns::make_a_response(2, "new.com", addrs), at(1));
  const auto name = hunter.lookup(client, server, at(2));
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "new.com");
  EXPECT_EQ(hunter.size(), 1u);
}

TEST(DnHunter, IgnoresErrorResponsesAndQueries) {
  ew::dns::DnHunter hunter;
  const IPv4Address client{10, 0, 0, 1};
  const IPv4Address addrs[] = {IPv4Address{9, 9, 9, 9}};
  auto nxdomain = ew::dns::make_a_response(1, "gone.com", addrs);
  nxdomain.rcode = 3;
  hunter.observe_response(client, nxdomain, at(0));
  auto query = ew::dns::make_a_response(2, "q.com", addrs);
  query.is_response = false;
  hunter.observe_response(client, query, at(0));
  EXPECT_EQ(hunter.size(), 0u);
}

TEST(DnHunter, ClearDropsEverything) {
  ew::dns::DnHunter hunter;
  const IPv4Address addrs[] = {IPv4Address{9, 9, 9, 9}};
  hunter.observe_response(IPv4Address{10, 0, 0, 1},
                          ew::dns::make_a_response(1, "x.com", addrs), at(0));
  ASSERT_EQ(hunter.size(), 1u);
  hunter.clear();
  EXPECT_EQ(hunter.size(), 0u);
  EXPECT_EQ(hunter.clients(), 0u);
}
