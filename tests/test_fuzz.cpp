// Robustness sweeps: every wire-format parser must survive arbitrary bytes
// without crashing, asserting, or reading out of bounds (run under ASan in
// CI to make the latter observable). A passive probe's parsers face
// adversarial input by construction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "core/rng.hpp"
#include "dns/message.hpp"
#include "dpi/classifier.hpp"
#include "dpi/parsers.hpp"
#include "net/packet.hpp"
#include "storage/codec.hpp"
#include "storage/columnar.hpp"
#include "storage/compress.hpp"
#include "storage/datalake.hpp"

namespace ew = edgewatch;

namespace {

std::vector<std::byte> random_bytes(ew::core::Xoshiro256& rng, std::size_t max_len) {
  std::vector<std::byte> out(ew::core::uniform_below(rng, max_len));
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xff);
  return out;
}

/// Random bytes biased to start like a real header (stresses deep paths).
std::vector<std::byte> seeded_bytes(ew::core::Xoshiro256& rng, std::size_t max_len,
                                    std::initializer_list<std::uint8_t> prefix) {
  auto out = random_bytes(rng, max_len);
  std::size_t i = 0;
  for (const auto p : prefix) {
    if (i >= out.size()) break;
    out[i++] = static_cast<std::byte>(p);
  }
  return out;
}

}  // namespace

TEST(Fuzz, FrameDecoderNeverCrashes) {
  ew::core::Xoshiro256 rng{0xF002};
  for (int i = 0; i < 20'000; ++i) {
    ew::net::Frame frame;
    frame.data = i % 3 == 0
                     ? seeded_bytes(rng, 96, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x08, 0x00,
                                              0x45})
                     : random_bytes(rng, 96);
    const auto pkt = ew::net::decode_frame(frame);
    if (pkt && pkt->tcp) {
      // Whatever decoded must be internally consistent.
      EXPECT_GE(pkt->tcp->header_length(), ew::net::TcpHeader::kMinSize);
    }
  }
}

TEST(Fuzz, DnsParserNeverCrashes) {
  ew::core::Xoshiro256 rng{0xD45};
  int parsed = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto bytes = i % 2 == 0
                           ? seeded_bytes(rng, 128, {0x12, 0x34, 0x80, 0x00, 0x00, 0x01})
                           : random_bytes(rng, 128);
    const auto msg = ew::dns::parse(bytes);
    parsed += msg.has_value();
    if (msg) {
      for (const auto& q : msg->questions) EXPECT_LE(q.name.size(), 255u);
    }
  }
  // The format is permissive enough that some random inputs parse; the
  // point is that none of the 20k crashed.
  SUCCEED() << parsed << " random inputs parsed as DNS";
}

TEST(Fuzz, DpiParsersNeverCrash) {
  ew::core::Xoshiro256 rng{0xD91};
  for (int i = 0; i < 20'000; ++i) {
    const auto bytes =
        i % 4 == 0 ? seeded_bytes(rng, 160, {0x16, 0x03, 0x01, 0x40, 0x00, 0x01})
        : i % 4 == 1 ? seeded_bytes(rng, 160, {'G', 'E', 'T', ' ', '/'})
        : i % 4 == 2 ? seeded_bytes(rng, 160, {0x09})
                     : random_bytes(rng, 160);
    (void)ew::dpi::parse_client_hello(bytes);
    (void)ew::dpi::parse_server_hello(bytes);
    (void)ew::dpi::parse_http_request(bytes);
    (void)ew::dpi::parse_http_response(bytes);
    (void)ew::dpi::parse_quic_header(bytes);
    (void)ew::dpi::parse_fbzero_sni(bytes);
    (void)ew::dpi::classify_payload(ew::core::TransportProto::kTcp, 443, bytes);
    (void)ew::dpi::classify_payload(ew::core::TransportProto::kUdp, 443, bytes);
  }
}

TEST(Fuzz, OverlongVarintsAreRejectedNotWrapped) {
  // A uint64 fits in 10 LEB128 bytes. Encodings that keep the continuation
  // bit going, or that put anything beyond bit 63 into the 10th byte, must
  // poison the reader — decoding them as silently wrapped integers would
  // turn one flipped bit into a plausible-looking garbage record.
  {
    // 11 bytes of 0x80: continuation past the maximum length.
    std::vector<std::byte> bytes(11, std::byte{0x80});
    ew::core::ByteReader r{bytes};
    EXPECT_EQ(ew::storage::get_varint(r), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    // 10th byte with payload beyond bit 63 (0x02 << 63 overflows).
    std::vector<std::byte> bytes(9, std::byte{0x80});
    bytes.push_back(std::byte{0x02});
    ew::core::ByteReader r{bytes};
    EXPECT_EQ(ew::storage::get_varint(r), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    // 10th byte with its continuation bit set: asks for an 11th byte.
    std::vector<std::byte> bytes(9, std::byte{0x80});
    bytes.push_back(std::byte{0x81});
    bytes.push_back(std::byte{0x00});
    ew::core::ByteReader r{bytes};
    EXPECT_EQ(ew::storage::get_varint(r), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    // The canonical maximum still decodes: 9×0xff then 0x01 = UINT64_MAX.
    std::vector<std::byte> bytes(9, std::byte{0xff});
    bytes.push_back(std::byte{0x01});
    ew::core::ByteReader r{bytes};
    EXPECT_EQ(ew::storage::get_varint(r), std::numeric_limits<std::uint64_t>::max());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
  {
    // Non-canonical but in-range (trailing zero groups) stays accepted —
    // only *overflowing* encodings are malformed.
    const std::byte bytes[] = {std::byte{0x81}, std::byte{0x80}, std::byte{0x00}};
    ew::core::ByteReader r{bytes};
    EXPECT_EQ(ew::storage::get_varint(r), 1u);
    EXPECT_TRUE(r.ok());
  }
  {
    // Signed path inherits the rejection through the zigzag wrapper.
    std::vector<std::byte> bytes(11, std::byte{0xff});
    ew::core::ByteReader r{bytes};
    EXPECT_EQ(ew::storage::get_varint_signed(r), 0);
    EXPECT_FALSE(r.ok());
  }
}

TEST(Fuzz, RandomVarintBytesNeverCrashOrOverflow) {
  ew::core::Xoshiro256 rng{0x7A41};
  for (int i = 0; i < 50'000; ++i) {
    // Heavy bias towards continuation bits so long encodings are common.
    std::vector<std::byte> bytes(ew::core::uniform_below(rng, 16));
    for (auto& b : bytes) {
      b = static_cast<std::byte>((rng() & 0x7f) | (ew::core::chance(rng, 0.8) ? 0x80 : 0));
    }
    ew::core::ByteReader r{bytes};
    (void)ew::storage::get_varint(r);
    ew::core::ByteReader rs{bytes};
    (void)ew::storage::get_varint_signed(rs);
  }
}

TEST(Fuzz, RecordDecoderNeverCrashes) {
  ew::core::Xoshiro256 rng{0xC0DEC};
  for (int i = 0; i < 20'000; ++i) {
    // Version byte often correct so decoding proceeds into the body.
    auto bytes = seeded_bytes(rng, 120, {3});
    ew::core::ByteReader r{bytes};
    (void)ew::storage::decode_record(r);
  }
}

TEST(Fuzz, DecompressorRejectsHugeDeclaredSizes) {
  // A 5-byte header can declare any u32 as the uncompressed size. It must
  // be rejected before it drives an allocation — found the hard way when
  // the random sweep below spent minutes poisoning 4 GB reserves under
  // ASan. Also: the output may never grow past the declared size, so a
  // malicious token stream does bounded work before failing.
  for (const std::uint32_t declared :
       {std::uint32_t{0xffffffff}, std::uint32_t{(1u << 26) + 1}}) {
    std::vector<std::byte> bytes{std::byte{1}};
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::byte>((declared >> (8 * i)) & 0xff));
    EXPECT_FALSE(ew::storage::decompress_block(bytes).has_value());
  }
  // Declared size smaller than what the tokens produce: must fail, not
  // overshoot. Token 0x20 = 2 literals, but the header promises 1.
  const std::byte lying[] = {std::byte{1}, std::byte{1}, std::byte{0}, std::byte{0},
                             std::byte{0}, std::byte{0x20}, std::byte{'a'}, std::byte{'b'}};
  EXPECT_FALSE(ew::storage::decompress_block(lying).has_value());
}

TEST(Fuzz, DecompressorNeverCrashes) {
  ew::core::Xoshiro256 rng{0x12f};
  for (int i = 0; i < 10'000; ++i) {
    const auto bytes = i % 2 == 0 ? seeded_bytes(rng, 200, {1}) : random_bytes(rng, 200);
    const auto out = ew::storage::decompress_block(bytes);
    if (out) {
      // If it decoded, the declared size matched.
      EXPECT_LE(out->size(), 1u << 26);
    }
  }
}

TEST(Fuzz, MutatedValidInputsSurviveParsers) {
  // Take valid messages, flip random bytes, re-parse: crashes forbidden.
  ew::core::Xoshiro256 rng{0xBEEF};
  const auto hello = ew::dpi::build_client_hello("www.facebook.com", {});
  const ew::core::IPv4Address addrs[] = {ew::core::IPv4Address{1, 2, 3, 4}};
  const auto dns_wire = ew::dns::serialize(ew::dns::make_a_response(7, "x.example.com", addrs));
  for (int i = 0; i < 20'000; ++i) {
    auto mutated = i % 2 == 0 ? hello : dns_wire;
    const auto flips = 1 + ew::core::uniform_below(rng, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[ew::core::uniform_below(rng, mutated.size())] ^=
          static_cast<std::byte>(1u << ew::core::uniform_below(rng, 8));
    }
    (void)ew::dpi::parse_client_hello(mutated);
    (void)ew::dns::parse(mutated);
  }
}

// ------------------------------------------------ lake truncation sweep

TEST(Fuzz, TruncatedLakeFileSurvivesFsckAndRepairAtEveryOffset) {
  // A sealed day file — row v2 AND columnar v3 — cut at EVERY byte offset:
  // fsck and repair must never crash, and at most the final block can be
  // damaged by the cut — everything sealed before it stays recoverable.
  const auto root = std::filesystem::temp_directory_path() / "ew_fuzz_trunc";
  std::filesystem::remove_all(root);

  // Build a small sealed file via two appends (two seal points).
  const ew::core::CivilDate day{2016, 5, 4};
  std::vector<ew::flow::FlowRecord> batch;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ew::flow::FlowRecord r;
    r.client_ip = ew::core::IPv4Address{10, 0, 0, static_cast<std::uint8_t>(1 + i)};
    r.server_ip = ew::core::IPv4Address{93, 184, 216, 34};
    r.client_port = static_cast<std::uint16_t>(40'000 + i);
    r.server_port = 443;
    r.first_packet = ew::core::Timestamp::from_date_time(day, 10);
    r.last_packet = r.first_packet + 1'000'000;
    r.server_name = "fuzz.example.com";
    batch.push_back(std::move(r));
  }
  for (const auto format : {ew::storage::LakeFormat::kV2, ew::storage::LakeFormat::kV3}) {
    SCOPED_TRACE(static_cast<int>(format));
    std::vector<std::byte> sealed;
    {
      ew::storage::DataLake lake{root / "master"};
      lake.set_write_format(format);
      ASSERT_TRUE(lake.append(day, batch));
      ASSERT_TRUE(lake.append(day, batch));  // second block group + reseal
      const auto path = lake.root() / ew::storage::DataLake::day_filename(day);
      std::ifstream in(path, std::ios::binary | std::ios::ate);
      sealed.resize(static_cast<std::size_t>(in.tellg()));
      in.seekg(0);
      in.read(reinterpret_cast<char*>(sealed.data()),
              static_cast<std::streamsize>(sealed.size()));
    }
    ASSERT_GT(sealed.size(), 32u);

    for (std::size_t cut = 0; cut <= sealed.size(); ++cut) {
      const auto dir = root / "sweep";
      std::filesystem::remove_all(dir);
      ew::storage::DataLake lake{dir};
      // Materialize the truncated file where the lake expects the day.
      std::filesystem::create_directories(dir);
      {
        std::ofstream out(dir / ew::storage::DataLake::day_filename(day),
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(sealed.data()),
                  static_cast<std::streamsize>(cut));
      }

      const auto before = lake.fsck_day(day);  // must not crash
      const auto health = lake.repair_day(day);
      EXPECT_LE(health.blocks_quarantined, 1u) << "cut=" << cut;
      // Whatever repair left behind must now scan clean end to end.
      const auto after = lake.fsck_day(day);
      if (std::filesystem::exists(dir / ew::storage::DataLake::day_filename(day))) {
        EXPECT_TRUE(after.healthy()) << "cut=" << cut << " errc="
                                     << static_cast<int>(after.errc);
        EXPECT_LE(after.records_ok, 12u);
        (void)lake.read_day(day);  // decoding the survivors must not crash
      }
      (void)before;
    }
    std::filesystem::remove_all(root / "master");
  }
  std::filesystem::remove_all(root);
}

// ------------------------------------------------ columnar body mutations

TEST(Fuzz, MutatedColumnarBodiesNeverCrashOrLeakPartialBlocks) {
  // Start from a valid columnar v3 body, then throw bit flips, truncations
  // and fully random 0xC3-prefixed bytes at the decoder. It must never
  // crash or read out of bounds (ASan/UBSan in CI), and a body it calls
  // corrupt must have delivered nothing — columnar decode is atomic.
  const ew::core::CivilDate day{2016, 5, 4};
  std::vector<ew::flow::FlowRecord> records;
  for (std::uint64_t i = 0; i < 300; ++i) {
    ew::flow::FlowRecord r;
    r.client_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(0x0a000000 + i)};
    r.server_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(0x5db8d800 + i % 7)};
    r.client_port = static_cast<std::uint16_t>(40'000 + i);
    r.server_port = i % 2 ? 443 : 80;
    r.proto = i % 3 ? ew::core::TransportProto::kTcp : ew::core::TransportProto::kUdp;
    r.first_packet = ew::core::Timestamp::from_date_time(day, static_cast<int>(i % 24));
    r.last_packet = r.first_packet + 1'000'000;
    r.up.packets = i;
    r.up.bytes = i * 100;
    r.down.bytes = i * 1000;
    if (i % 4) r.rtt.add(static_cast<std::int64_t>(2000 + i));
    r.l7 = i % 2 ? ew::dpi::L7Protocol::kTls : ew::dpi::L7Protocol::kHttp;
    r.server_name = i % 5 ? "fuzz.example.com" : "cdn.netflix.com";
    r.content_type = i % 6 ? "" : "video/mp4";
    records.push_back(std::move(r));
  }
  ew::core::ByteWriter body;
  ew::storage::encode_columnar_block(records, ew::services::ServiceCatalog::standard(), body);
  const auto valid = body.view();

  ew::core::Xoshiro256 rng{0xC3F0};
  ew::storage::ColumnScratch scratch;
  const auto pred = ew::storage::ScanPredicate::for_proto(ew::core::TransportProto::kUdp);
  std::vector<std::byte> mut;
  for (int i = 0; i < 20'000; ++i) {
    if (i % 4 == 3) {
      mut = seeded_bytes(rng, 512, {0xC3, 1});  // wholly random, right tag
    } else {
      mut.assign(valid.begin(), valid.end());
      const std::size_t flips = 1 + ew::core::uniform_below(rng, 8);
      for (std::size_t f = 0; f < flips; ++f) {
        mut[ew::core::uniform_below(rng, mut.size())] ^=
            static_cast<std::byte>(1u << (rng() & 7));
      }
      if (i % 4 == 2) mut.resize(ew::core::uniform_below(rng, mut.size() + 1));
    }
    std::uint64_t delivered = 0;
    auto sink = [](const ew::flow::FlowRecord&) {};
    const auto status = ew::storage::decode_columnar_block(
        mut, scratch, i % 2 ? &pred : nullptr, delivered, sink,
        i % 3 ? ew::storage::kAnyRecordCount : static_cast<std::uint32_t>(records.size()));
    if (status == ew::storage::BlockDecodeStatus::kCorrupt) {
      EXPECT_EQ(delivered, 0u) << "iteration " << i;
    }
  }
}
