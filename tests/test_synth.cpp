// Scenario engine tests: determinism, population dynamics, and calibration
// of the generated traffic against the paper's headline numbers.
#include <gtest/gtest.h>

#include "analytics/figures.hpp"
#include "probe/probe.hpp"
#include "synth/curve.hpp"
#include "synth/generator.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
using ew::core::CivilDate;
using ew::services::ServiceId;
using ew::synth::Curve;

namespace {

const ew::synth::WorkloadGenerator& paper_generator() {
  static const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7)};
  return gen;
}

}  // namespace

// ------------------------------------------------------------------ curve

TEST(Curve, InterpolatesLinearly) {
  const Curve c{{{CivilDate{2014, 1, 1}, 100.0}, {CivilDate{2014, 1, 11}, 200.0}}};
  EXPECT_DOUBLE_EQ(c.at({2014, 1, 1}), 100.0);
  EXPECT_DOUBLE_EQ(c.at({2014, 1, 6}), 150.0);
  EXPECT_DOUBLE_EQ(c.at({2014, 1, 11}), 200.0);
}

TEST(Curve, ClampsOutsideRange) {
  const Curve c{{{CivilDate{2014, 1, 1}, 5.0}, {CivilDate{2015, 1, 1}, 10.0}}};
  EXPECT_DOUBLE_EQ(c.at({2010, 1, 1}), 5.0);
  EXPECT_DOUBLE_EQ(c.at({2020, 1, 1}), 10.0);
}

TEST(Curve, StepEventsViaAdjacentPoints) {
  const Curve c{{{CivilDate{2015, 12, 6}, 0.35}, {CivilDate{2015, 12, 8}, 0.0}}};
  EXPECT_DOUBLE_EQ(c.at({2015, 12, 6}), 0.35);
  EXPECT_DOUBLE_EQ(c.at({2015, 12, 8}), 0.0);
}

TEST(Curve, ConstantAndEmpty) {
  EXPECT_DOUBLE_EQ(Curve{0.7}.at({2016, 5, 5}), 0.7);
  EXPECT_DOUBLE_EQ(Curve{}.at({2016, 5, 5}), 0.0);
}

// -------------------------------------------------------------- population

TEST(Population, ChurnShrinksAdslGrowsFtth) {
  ew::synth::PopulationConfig cfg;
  cfg.seed = 3;
  ew::synth::SubscriberPopulation pop{cfg};
  const auto start = ew::core::days_from_civil(cfg.start);
  const auto end = ew::core::days_from_civil(cfg.end) - 1;
  EXPECT_GT(pop.present_on(start, ew::flow::AccessTech::kAdsl),
            pop.present_on(end, ew::flow::AccessTech::kAdsl));
  EXPECT_LT(pop.present_on(start, ew::flow::AccessTech::kFtth),
            pop.present_on(end, ew::flow::AccessTech::kFtth));
  EXPECT_EQ(pop.lines().size(), cfg.adsl_lines + cfg.ftth_lines);
}

TEST(Population, DeterministicAcrossConstructions) {
  ew::synth::PopulationConfig cfg;
  cfg.seed = 11;
  ew::synth::SubscriberPopulation a{cfg}, b{cfg};
  ASSERT_EQ(a.lines().size(), b.lines().size());
  for (std::size_t i = 0; i < a.lines().size(); ++i) {
    EXPECT_EQ(a.lines()[i].ip, b.lines()[i].ip);
    EXPECT_DOUBLE_EQ(a.lines()[i].appetite, b.lines()[i].appetite);
    EXPECT_EQ(a.lines()[i].leave_day, b.lines()[i].leave_day);
  }
}

TEST(Population, AddressesMatchProbePrefixes) {
  ew::synth::PopulationConfig cfg;
  ew::synth::SubscriberPopulation pop{cfg};
  const ew::probe::ProbeConfig probe_cfg;
  for (const auto& line : pop.lines()) {
    EXPECT_TRUE(probe_cfg.customer_net.contains(line.ip));
    EXPECT_EQ(probe_cfg.ftth_net.contains(line.ip),
              line.access == ew::flow::AccessTech::kFtth);
  }
}

// --------------------------------------------------------------- generator

TEST(Generator, DeterministicDay) {
  const auto& gen = paper_generator();
  const auto a = gen.day_records({2015, 5, 20});
  const auto b = gen.day_records({2015, 5, 20});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client_ip, b[i].client_ip);
    EXPECT_EQ(a[i].down.bytes, b[i].down.bytes);
    EXPECT_EQ(a[i].first_packet, b[i].first_packet);
  }
}

TEST(Generator, ActiveShareAroundEightyPercent) {
  const auto agg = paper_generator().day_aggregate({2015, 5, 20});
  const double share = static_cast<double>(agg.active_subscribers()) /
                       static_cast<double>(agg.total_subscribers());
  EXPECT_GT(share, 0.70);
  EXPECT_LT(share, 0.92);
}

TEST(Generator, DailyVolumeMatchesFig3Targets) {
  // April 2014: ADSL ~390 MB/day, FTTH ~490; April 2017: ~660 / ~900.
  auto check = [](CivilDate date, double adsl_mb, double ftth_mb, double tol) {
    std::vector<ew::analytics::DayAggregate> days;
    days.push_back(paper_generator().day_aggregate(date));
    const auto rows = ew::analytics::volume_trend(days);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_NEAR(rows[0].down_mb[0], adsl_mb, tol) << date.to_string();
    EXPECT_NEAR(rows[0].down_mb[1], ftth_mb, tol * 1.6) << date.to_string();
  };
  check({2014, 4, 10}, 390, 500, 110);
  check({2017, 4, 12}, 660, 930, 170);
}

TEST(Generator, UploadAdslFlatAndBounded) {
  std::vector<ew::analytics::DayAggregate> d14, d17;
  d14.push_back(paper_generator().day_aggregate({2014, 4, 10}));
  d17.push_back(paper_generator().day_aggregate({2017, 4, 12}));
  const auto r14 = ew::analytics::volume_trend(d14);
  const auto r17 = ew::analytics::volume_trend(d17);
  // ADSL upload roughly flat (bottleneck), FTTH upload grows.
  EXPECT_NEAR(r17[0].up_mb[0] / r14[0].up_mb[0], 1.0, 0.45);
  EXPECT_GT(r17[0].up_mb[1], r14[0].up_mb[1] * 0.95);
}

TEST(Generator, NetflixAbsentBeforeItalianLaunch) {
  const auto agg = paper_generator().day_aggregate({2015, 6, 1});
  for (const auto& [_, sub] : agg.subscribers) {
    EXPECT_EQ(sub.service(ServiceId::kNetflix).total(), 0u);
  }
  const auto later = paper_generator().day_aggregate({2017, 4, 12});
  std::uint64_t netflix_bytes = 0;
  for (const auto& [_, sub] : later.subscribers) {
    netflix_bytes += sub.service(ServiceId::kNetflix).total();
  }
  EXPECT_GT(netflix_bytes, 0u);
}

TEST(Generator, FbZeroAppearsOnlyAfterEventF) {
  const auto before = paper_generator().day_aggregate({2016, 10, 20});
  const auto after = paper_generator().day_aggregate({2017, 2, 15});
  EXPECT_EQ(before.web_bytes[static_cast<std::size_t>(ew::dpi::WebProtocol::kFbZero)], 0u);
  EXPECT_GT(after.web_bytes[static_cast<std::size_t>(ew::dpi::WebProtocol::kFbZero)], 0u);
}

TEST(Generator, SpdyHiddenBeforeProbeUpgrade) {
  // SPDY exists on the wire in 2014 but probes label it TLS until event C.
  const auto early = paper_generator().day_aggregate({2015, 3, 1});
  const auto late = paper_generator().day_aggregate({2015, 9, 1});
  EXPECT_EQ(early.web_bytes[static_cast<std::size_t>(ew::dpi::WebProtocol::kSpdy)], 0u);
  EXPECT_GT(late.web_bytes[static_cast<std::size_t>(ew::dpi::WebProtocol::kSpdy)], 0u);
}

TEST(Generator, QuicBlackoutDecember2015) {
  const auto before = paper_generator().day_aggregate({2015, 11, 20});
  const auto during = paper_generator().day_aggregate({2015, 12, 20});
  const auto after = paper_generator().day_aggregate({2016, 2, 10});
  const auto q = static_cast<std::size_t>(ew::dpi::WebProtocol::kQuic);
  EXPECT_GT(before.web_bytes[q], 0u);
  EXPECT_EQ(during.web_bytes[q], 0u);
  EXPECT_GT(after.web_bytes[q], 0u);
}

TEST(Generator, YouTubeRttCollapsesWithIspCaches) {
  std::vector<ew::analytics::DayAggregate> d14, d17;
  d14.push_back(paper_generator().day_aggregate({2014, 4, 10}));
  d17.push_back(paper_generator().day_aggregate({2017, 4, 12}));
  const auto rtt14 = ew::analytics::rtt_distribution(d14, ServiceId::kYouTube);
  const auto rtt17 = ew::analytics::rtt_distribution(d17, ServiceId::kYouTube);
  ASSERT_GT(rtt14.size(), 100u);
  ASSERT_GT(rtt17.size(), 100u);
  // 2017: a majority of flows served sub-millisecond; 2014: none.
  EXPECT_LT(rtt14.cdf(1.0), 0.02);
  EXPECT_GT(rtt17.cdf(1.0), 0.40);
}

TEST(Generator, WhatsAppStaysFar) {
  std::vector<ew::analytics::DayAggregate> d17;
  d17.push_back(paper_generator().day_aggregate({2017, 4, 12}));
  const auto rtt = ew::analytics::rtt_distribution(d17, ServiceId::kWhatsApp);
  ASSERT_GT(rtt.size(), 20u);
  EXPECT_GT(rtt.median(), 80.0);
}

TEST(Generator, SharedAkamaiIpsDetected) {
  const auto agg = paper_generator().day_aggregate({2014, 4, 10});
  std::size_t shared = 0;
  for (const auto& [_, stats] : agg.server_ips) shared += stats.shared();
  EXPECT_GT(shared, 0u);  // Facebook/Instagram/Other all ride Akamai in 2014
}

TEST(Generator, RetransmissionRatesTrackPathLength) {
  std::vector<ew::analytics::DayAggregate> days;
  days.push_back(paper_generator().day_aggregate({2017, 4, 12}));
  const auto health = ew::analytics::aggregate_health(days);
  const auto& yt = health[static_cast<std::size_t>(ServiceId::kYouTube)];      // sub-ms caches
  const auto& wa = health[static_cast<std::size_t>(ServiceId::kWhatsApp)];     // ~100 ms DC
  ASSERT_GT(yt.packets, 1000u);
  ASSERT_GT(wa.packets, 1000u);
  EXPECT_GT(wa.retransmission_rate(), yt.retransmission_rate());
  EXPECT_GT(wa.retransmission_rate(), 0.0);
  EXPECT_LT(yt.retransmission_rate(), 0.01);
}

// --------------------------------------------------------- packet renderer

TEST(PacketRenderer, ConversationSurvivesProbe) {
  ew::synth::ConversationSpec spec;
  spec.client = ew::core::IPv4Address{10, 0, 0, 42};
  spec.server = ew::core::IPv4Address{157, 240, 1, 9};
  spec.web = ew::dpi::WebProtocol::kHttp2;
  spec.server_name = "www.facebook.com";
  spec.alpn = "h2";
  spec.response_bytes = 30'000;
  spec.start = ew::core::Timestamp::from_date_time({2016, 5, 1}, 21);
  spec.rtt_us = 3'000;

  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};
  for (const auto& frame : ew::synth::render_conversation(spec)) probe.process(frame);
  probe.finish();

  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].server_name, "www.facebook.com");
  EXPECT_EQ(records[0].web, ew::dpi::WebProtocol::kHttp2);
  EXPECT_EQ(records[0].down.bytes, 30'000u);
  EXPECT_TRUE(records[0].handshake_completed);
  EXPECT_EQ(records[0].close_reason, ew::flow::FlowCloseReason::kTcpTeardown);
  EXPECT_NEAR(records[0].rtt.min_ms(), 3.0, 0.5);
}

TEST(PacketRenderer, QuicConversationSurvivesProbe) {
  ew::synth::ConversationSpec spec;
  spec.client = ew::core::IPv4Address{10, 0, 0, 43};
  spec.server = ew::core::IPv4Address{173, 194, 4, 4};
  spec.web = ew::dpi::WebProtocol::kQuic;
  spec.response_bytes = 9'000;
  spec.start = ew::core::Timestamp::from_date_time({2016, 5, 1}, 20);

  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};
  for (const auto& frame : ew::synth::render_conversation(spec)) probe.process(frame);
  probe.finish();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].web, ew::dpi::WebProtocol::kQuic);
  EXPECT_EQ(records[0].proto, ew::core::TransportProto::kUdp);
  EXPECT_EQ(records[0].down.bytes, 9'000u);
}

TEST(PacketRenderer, P2pConversationClassified) {
  ew::synth::ConversationSpec spec;
  spec.client = ew::core::IPv4Address{10, 0, 0, 44};
  spec.server = ew::core::IPv4Address{93, 33, 44, 55};
  spec.p2p = true;
  spec.server_port = 51413;
  spec.response_bytes = 2'000;
  spec.start = ew::core::Timestamp::from_date_time({2014, 5, 1}, 22);

  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};
  for (const auto& frame : ew::synth::render_conversation(spec)) probe.process(frame);
  probe.finish();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].l7, ew::dpi::L7Protocol::kBittorrent);
}

TEST(PacketRenderer, DnsResponseFeedsDnHunter) {
  const ew::core::IPv4Address client{10, 0, 0, 45};
  const ew::core::IPv4Address server{158, 85, 9, 9};
  const ew::core::IPv4Address addrs[] = {server};
  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};
  probe.process(ew::synth::render_dns_response(
      client, ew::core::IPv4Address{10, 255, 0, 1}, "e1.whatsapp.net", addrs,
      ew::core::Timestamp::from_date_time({2015, 2, 1}, 10)));

  ew::synth::ConversationSpec spec;
  spec.client = client;
  spec.server = server;
  spec.web = ew::dpi::WebProtocol::kTls;
  spec.server_name = "";  // no SNI: only DN-Hunter can name it
  spec.start = ew::core::Timestamp::from_date_time({2015, 2, 1}, 10, 1);
  for (const auto& frame : ew::synth::render_conversation(spec)) probe.process(frame);
  probe.finish();

  ASSERT_EQ(records.size(), 2u);
  // Export order is not defined; the app flow is the TCP one.
  const auto* app =
      records[0].proto != ew::core::TransportProto::kTcp ? &records[1] : &records[0];
  EXPECT_EQ(app->server_name, "e1.whatsapp.net");
  EXPECT_EQ(app->name_source, ew::flow::NameSource::kDnsHunter);
}
