// obs:: registry contracts. The load-bearing ones:
//   - shard merging is a plain element-wise sum, so it must be commutative
//     and associative and agree with a single-shard reference (the same
//     oracle discipline core/sketch merges are held to);
//   - record vs scrape is safe concurrently (this file is in the TSan
//     ctest filter — the Concurrent* tests are the race detectors);
//   - a fixed workload yields a byte-identical JSON snapshot regardless of
//     thread count, run order, or shard assignment (golden determinism);
//   - segments_for_fields mirrors the columnar decoder's projection gates.
// In an EW_OBS=OFF build the same file compiles against null.hpp and only
// asserts that everything is inert.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/packet.hpp"
#include "obs/obs.hpp"
#include "probe/probe.hpp"
#include "storage/columnar.hpp"

namespace ew = edgewatch;
namespace obs = ew::obs;
namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

// ---------------------------------------------------------------- storage
// Projection accounting is independent of the obs build mode: the columnar
// static_asserts already pin kAll and 0; here we pin the per-bit costs the
// lake_scan_segments_skipped_total counter depends on.
TEST(ObsSegments, MirrorsColumnarProjectionGates) {
  namespace sf = ew::storage::scan_fields;
  const unsigned all = ew::storage::segments_for_fields(sf::kAll);
  EXPECT_EQ(all, ew::storage::kColumnSegmentCount);
  // Filter columns (ts/service/proto/server_ip) always decode.
  EXPECT_EQ(ew::storage::segments_for_fields(0), 4u);
  // Dictionary columns cost a dict segment plus an index segment.
  EXPECT_EQ(ew::storage::segments_for_fields(sf::kServerName), 6u);
  EXPECT_EQ(ew::storage::segments_for_fields(sf::kContentType), 6u);
  EXPECT_EQ(ew::storage::segments_for_fields(sf::kHttpStatus), 5u);
  // RTT: samples+min decode for either bit; max/avg deltas only for spread.
  EXPECT_EQ(ew::storage::segments_for_fields(sf::kRttMin), 6u);
  EXPECT_EQ(ew::storage::segments_for_fields(sf::kRttSpread), 8u);
  EXPECT_EQ(ew::storage::segments_for_fields(sf::kRttMin | sf::kRttSpread), 8u);
  // Adding a field never decodes fewer segments.
  std::mt19937 rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t mask = rng();
    const std::uint32_t extra = 1u << (rng() % 22);
    EXPECT_LE(ew::storage::segments_for_fields(mask),
              ew::storage::segments_for_fields(mask | extra));
  }
}

#if defined(EW_OBS_ENABLED) && EW_OBS_ENABLED

namespace {

// Deterministic test clock: ClockFn is a stateless function pointer, so the
// fake advances through a global atomic.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.load(std::memory_order_relaxed); }

void run_threads(std::size_t count, const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t t = 0; t < count; ++t) threads.emplace_back(body, t);
  for (auto& th : threads) th.join();
}

}  // namespace

TEST(ObsCounter, SumsAcrossThreadsAndShards) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("events_total");
  run_threads(8, [&](std::size_t) {
    for (int i = 0; i < 10'000; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), 80'000u);
}

TEST(ObsCounter, LabelsSelectDistinctSeries) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x_total", "stage=\"a\"");
  obs::Counter& b = reg.counter("x_total", "stage=\"b\"");
  EXPECT_NE(&a, &b);
  // Registration is idempotent per (name, labels).
  EXPECT_EQ(&a, &reg.counter("x_total", "stage=\"a\""));
  a.add(3);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 0u);
}

TEST(ObsGauge, SetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsHistogram, BucketLeSemantics) {
  obs::Registry reg;
  const std::int64_t bounds[] = {10, 100, 1000};
  obs::Histogram& h = reg.histogram("lat", bounds);
  h.record(-5);    // below range: first bucket
  h.record(10);    // == bound: le semantics, same bucket
  h.record(11);    // just above: next bucket
  h.record(1000);  // == last bound: last bounded bucket
  h.record(1001);  // above all bounds: overflow
  const auto m = h.merged();
  ASSERT_EQ(m.counts.size(), 4u);
  EXPECT_EQ(m.counts[0], 2u);
  EXPECT_EQ(m.counts[1], 1u);
  EXPECT_EQ(m.counts[2], 1u);
  EXPECT_EQ(m.counts[3], 1u);
  EXPECT_EQ(m.count, 5u);
  EXPECT_EQ(m.sum, -5 + 10 + 11 + 1000 + 1001);
}

TEST(ObsHistogram, DefaultLatencyBounds) {
  const auto bounds = obs::default_latency_bounds_ns();
  ASSERT_EQ(bounds.size(), 16u);
  EXPECT_EQ(bounds[0], 64);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_EQ(bounds[i], bounds[i - 1] * 4);
}

// The oracle: spreading a workload across shards and merging in any order
// or grouping must equal recording everything into one shard.
TEST(ObsHistogram, ShardMergeMatchesSingleShardOracle) {
  obs::Registry reg;
  const std::int64_t bounds[] = {50, 500, 5000, 50'000};
  obs::Histogram& reference = reg.histogram("ref", bounds);
  obs::Histogram& sharded = reg.histogram("sharded", bounds);

  std::mt19937 rng(7);
  std::vector<std::int64_t> values(5'000);
  for (auto& v : values) v = static_cast<std::int64_t>(rng() % 100'000);

  for (std::size_t i = 0; i < values.size(); ++i) {
    reference.record_in_shard(0, values[i]);
    sharded.record_in_shard(i % obs::kShards, values[i]);
  }
  EXPECT_EQ(sharded.merged(), reference.merged());

  // Commutativity: forward vs reverse merge order.
  obs::Histogram::Merged forward = sharded.shard_snapshot(0);
  for (std::size_t s = 1; s < obs::kShards; ++s) forward.merge(sharded.shard_snapshot(s));
  obs::Histogram::Merged reverse = sharded.shard_snapshot(obs::kShards - 1);
  for (std::size_t s = obs::kShards - 1; s-- > 0;) reverse.merge(sharded.shard_snapshot(s));
  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(forward, reference.merged());

  // Associativity: pairwise tree grouping equals the linear fold.
  std::vector<obs::Histogram::Merged> level;
  for (std::size_t s = 0; s < obs::kShards; ++s) level.push_back(sharded.shard_snapshot(s));
  while (level.size() > 1) {
    std::vector<obs::Histogram::Merged> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      level[i].merge(level[i + 1]);
      next.push_back(level[i]);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  EXPECT_EQ(level.front(), reference.merged());
}

TEST(ObsSpan, FeedsHistogramAndTraceRing) {
  obs::Registry reg;
  reg.set_clock(&fake_clock);
  obs::SpanSite& site = reg.span_site("checkpoint");
  g_fake_now = 1'000;
  {
    obs::Span span(site);
    g_fake_now = 3'500;
  }
  const auto m = site.hist->merged();
  EXPECT_EQ(m.count, 1u);
  EXPECT_EQ(m.sum, 2'500);
  const obs::Snapshot snap = reg.scrape();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "checkpoint");
  EXPECT_EQ(snap.spans[0].start_ns, 1'000u);
  EXPECT_EQ(snap.spans[0].dur_ns, 2'500u);
}

TEST(ObsSpan, UntracedSiteSkipsRing) {
  obs::Registry reg;
  reg.set_clock(&fake_clock);
  obs::SpanSite& site = reg.span_site("hot", /*traced=*/false);
  g_fake_now = 10;
  {
    obs::Span span(site);
    g_fake_now = 30;
  }
  EXPECT_EQ(site.hist->merged().count, 1u);
  EXPECT_TRUE(reg.scrape().spans.empty());
}

TEST(ObsSpan, RingOverwritesOldest) {
  obs::Registry reg;
  reg.set_clock(&fake_clock);
  obs::SpanSite& site = reg.span_site("tick");
  for (std::size_t i = 0; i < obs::Registry::kSpanRingCapacity + 10; ++i) {
    g_fake_now = i;
    obs::Span span(site);
  }
  const obs::Snapshot snap = reg.scrape();
  ASSERT_EQ(snap.spans.size(), obs::Registry::kSpanRingCapacity);
  // Oldest 10 were overwritten: the earliest surviving start is 10.
  EXPECT_EQ(snap.spans.front().start_ns, 10u);
}

TEST(ObsRegistry, CallbackGaugeRegistersAndUnregisters) {
  obs::Registry reg;
  {
    const obs::CallbackHandle handle =
        reg.on_scrape("pool_depth", {}, [] { return std::int64_t{42}; });
    const obs::Snapshot snap = reg.scrape();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "pool_depth");
    EXPECT_EQ(snap.gauges[0].value, 42);
  }
  EXPECT_TRUE(reg.scrape().gauges.empty());
}

TEST(ObsRegistry, ScrapeSortsByNameThenLabels) {
  obs::Registry reg;
  reg.counter("zebra_total").add(1);
  reg.counter("alpha_total", "k=\"2\"").add(1);
  reg.counter("alpha_total", "k=\"1\"").add(1);
  const obs::Snapshot snap = reg.scrape();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[0].labels, "k=\"1\"");
  EXPECT_EQ(snap.counters[1].labels, "k=\"2\"");
  EXPECT_EQ(snap.counters[2].name, "zebra_total");
}

// TSan target: writers hammer a counter and a histogram while the main
// thread scrapes. Correctness bar: no race reports, monotone scrape values,
// exact final totals.
TEST(ObsConcurrency, RecordVersusScrape) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("hits_total");
  obs::Histogram& h = reg.histogram("work_ns");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 25'000;
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = reg.scrape();
      for (const auto& counter : snap.counters) {
        EXPECT_GE(counter.value, last);
        last = counter.value;
      }
    }
  });
  run_threads(kWriters, [&](std::size_t t) {
    for (int i = 0; i < kPerWriter; ++i) {
      c.add(1);
      h.record(static_cast<std::int64_t>(t * 1'000 + i % 777));
    }
  });
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(h.merged().count, static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

namespace {

/// One fixed workload, partitioned across `threads` workers by index: the
/// recorded multiset is identical for any thread count.
std::string golden_json(std::size_t threads) {
  obs::Registry reg;
  reg.set_clock(&fake_clock);
  g_fake_now = 123'456'789;
  obs::Counter& events = reg.counter("events_total");
  obs::Counter& staged = reg.counter("stage_total", "stage=\"decode\"");
  obs::Histogram& lat = reg.histogram("latency_ns");
  run_threads(threads, [&](std::size_t t) {
    for (std::size_t i = t; i < 4'000; i += threads) {
      events.add(i % 3 + 1);
      staged.add(1);
      lat.record(static_cast<std::int64_t>((i * 37) % 900'000));
    }
  });
  reg.gauge("overload_state").set(2);
  return obs::to_json(reg.scrape());
}

}  // namespace

TEST(ObsSnapshot, GoldenJsonDeterministicAcrossThreadCounts) {
  const std::string one = golden_json(1);
  const std::string two = golden_json(2);
  const std::string eight = golden_json(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // And across runs: re-running the same workload reproduces the bytes.
  EXPECT_EQ(one, golden_json(3));
  // Sanity: the golden document actually carries the workload.
  EXPECT_NE(one.find("\"events_total\""), std::string::npos);
  EXPECT_NE(one.find("\"stage=\\\"decode\\\"\""), std::string::npos);
  EXPECT_NE(one.find("123456789"), std::string::npos);
}

TEST(ObsSnapshot, JsonExcludesSpansUnlessAsked) {
  obs::Registry reg;
  reg.set_clock(&fake_clock);
  obs::SpanSite& site = reg.span_site("flush");
  g_fake_now = 5;
  {
    obs::Span span(site);
    g_fake_now = 9;
  }
  const obs::Snapshot snap = reg.scrape();
  EXPECT_EQ(obs::to_json(snap).find("\"spans\""), std::string::npos);
  EXPECT_NE(obs::to_json(snap, /*include_spans=*/true).find("\"spans\""), std::string::npos);
}

TEST(ObsSnapshot, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("frames_total", "stage=\"decode\"").add(7);
  const std::int64_t bounds[] = {100, 1000};
  reg.histogram("lat_ns", bounds).record(150);
  reg.gauge("depth").set(3);
  const std::string text = obs::to_prometheus(reg.scrape());
  EXPECT_NE(text.find("# TYPE frames_total counter"), std::string::npos);
  EXPECT_NE(text.find("frames_total{stage=\"decode\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"1000\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
}

TEST(ObsSnapshot, FileWriteRoundTrip) {
  obs::Registry reg;
  reg.set_clock(&fake_clock);
  g_fake_now = 777;
  reg.counter("written_total").add(9);
  const obs::Snapshot snap = reg.scrape();
  const fs::path path = fs::temp_directory_path() / "ew_obs_roundtrip.json";
  ASSERT_TRUE(obs::write_snapshot(snap, path, obs::ExportFormat::kJson));
  EXPECT_EQ(slurp(path), obs::to_json(snap));
  const fs::path prom = fs::temp_directory_path() / "ew_obs_roundtrip.prom";
  ASSERT_TRUE(obs::write_snapshot(snap, prom, obs::ExportFormat::kPrometheus));
  EXPECT_EQ(slurp(prom), obs::to_prometheus(snap));
  fs::remove(path);
  fs::remove(prom);
}

// The probe flushes its plain counters into the global registry as deltas
// at batch boundaries and on finish(); a short replay must surface there.
TEST(ObsProbe, FlushesCountersToGlobalRegistry) {
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t frames_before = reg.counter("probe_frames_total").value();
  const std::uint64_t exported_before = reg.counter("probe_records_exported_total").value();

  std::size_t records = 0;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&&) { ++records; }};
  const ew::core::IPv4Address client{10, 0, 3, 7};
  const ew::core::IPv4Address server{31, 13, 86, 36};
  probe.process(ew::net::PacketBuilder{}
                    .ts(ew::core::Timestamp{1'000})
                    .ip(client, server)
                    .tcp(40'001, 443, 1, 0, ew::net::TcpFlags::kSyn)
                    .build());
  probe.process(ew::net::PacketBuilder{}
                    .ts(ew::core::Timestamp{4'000})
                    .ip(server, client)
                    .tcp(443, 40'001, 100, 2, ew::net::TcpFlags::kSyn | ew::net::TcpFlags::kAck)
                    .build());
  probe.finish();

  EXPECT_EQ(reg.counter("probe_frames_total").value(), frames_before + 2);
  EXPECT_EQ(reg.counter("probe_records_exported_total").value(), exported_before + records);
  EXPECT_GE(records, 1u);
}

#else  // !EW_OBS_ENABLED — the null backend must be inert, not just quiet.

TEST(ObsNull, EverythingIsInert) {
  static_assert(!obs::kEnabled);
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("anything_total");
  c.add(1'000);
  EXPECT_EQ(c.value(), 0u);
  reg.gauge("g").set(5);
  reg.histogram("h").record(42);
  {
    obs::Span span(reg.span_site("s"));
  }
  const obs::Snapshot snap = reg.scrape();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(obs::to_json(snap), "{}\n");
  EXPECT_EQ(obs::to_prometheus(snap), "");
}

#endif  // EW_OBS_ENABLED
