// Pcap file round-trips and robustness, including probe-from-pcap replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "net/pcap.hpp"
#include "probe/probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

struct TempFile {
  fs::path path;
  TempFile()
      : path(fs::temp_directory_path() /
             ("ewpcap_" + std::to_string(::getpid()) + "_" + std::to_string(counter()++))) {}
  ~TempFile() { fs::remove(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

ew::net::Trace sample_trace() {
  ew::net::Trace trace;
  ew::synth::ConversationSpec spec;
  spec.client = ew::core::IPv4Address{10, 0, 0, 9};
  spec.server = ew::core::IPv4Address{157, 240, 1, 1};
  spec.web = ew::dpi::WebProtocol::kTls;
  spec.server_name = "www.facebook.com";
  spec.response_bytes = 9'000;
  spec.start = ew::core::Timestamp::from_date_time({2016, 3, 4}, 12);
  spec.rtt_us = 12'000;
  for (auto& f : ew::synth::render_conversation(spec)) trace.add(std::move(f));
  return trace;
}

}  // namespace

TEST(Pcap, WriteReadRoundTrip) {
  TempFile file;
  const auto trace = sample_trace();
  const auto written = ew::net::write_pcap(file.path, trace);
  EXPECT_GT(written, 24u);

  const auto loaded = ew::net::load_pcap(file.path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].timestamp, trace[i].timestamp);
    EXPECT_EQ((*loaded)[i].data, trace[i].data);
  }
}

TEST(Pcap, StatsCountFramesAndBytes) {
  TempFile file;
  const auto trace = sample_trace();
  ew::net::write_pcap(file.path, trace);
  std::size_t n = 0;
  const auto stats = ew::net::read_pcap(file.path, [&n](ew::net::Frame&&) { ++n; });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames, trace.size());
  EXPECT_EQ(n, trace.size());
  EXPECT_EQ(stats->truncated, 0u);
  std::uint64_t bytes = 0;
  for (const auto& f : trace) bytes += f.data.size();
  EXPECT_EQ(stats->bytes, bytes);
}

TEST(Pcap, SnaplenTruncatesAndIsReported) {
  TempFile file;
  const auto trace = sample_trace();
  ew::net::write_pcap(file.path, trace, 100);
  const auto stats = ew::net::read_pcap(file.path, [](ew::net::Frame&& f) {
    EXPECT_LE(f.data.size(), 100u);
  });
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->truncated, 0u);
}

TEST(Pcap, RejectsGarbageAndMissingFiles) {
  EXPECT_FALSE(ew::net::load_pcap("/nonexistent/file.pcap").has_value());
  TempFile file;
  std::ofstream(file.path, std::ios::binary) << "this is not a pcap file at all";
  EXPECT_FALSE(ew::net::load_pcap(file.path).has_value());
}

TEST(Pcap, TruncatedLastRecordEndsGracefully) {
  TempFile file;
  const auto trace = sample_trace();
  ew::net::write_pcap(file.path, trace);
  // Chop the file mid-record.
  const auto size = fs::file_size(file.path);
  fs::resize_file(file.path, size - 7);
  std::size_t n = 0;
  const auto stats = ew::net::read_pcap(file.path, [&n](ew::net::Frame&&) { ++n; });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames, trace.size() - 1);
  EXPECT_EQ(n, trace.size() - 1);
}

TEST(Pcap, ProbeConsumesPcapReplay) {
  TempFile file;
  ew::net::write_pcap(file.path, sample_trace());
  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};
  const auto stats =
      ew::net::read_pcap(file.path, [&](ew::net::Frame&& f) { probe.process(f); });
  ASSERT_TRUE(stats.has_value());
  probe.finish();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].server_name, "www.facebook.com");
  EXPECT_EQ(records[0].down.bytes, 9'000u);
}
