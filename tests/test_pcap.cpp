// Pcap file round-trips and robustness, including probe-from-pcap replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "net/pcap.hpp"
#include "probe/probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

struct TempFile {
  fs::path path;
  TempFile()
      : path(fs::temp_directory_path() /
             ("ewpcap_" + std::to_string(::getpid()) + "_" + std::to_string(counter()++))) {}
  ~TempFile() { fs::remove(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

ew::net::Trace sample_trace() {
  ew::net::Trace trace;
  ew::synth::ConversationSpec spec;
  spec.client = ew::core::IPv4Address{10, 0, 0, 9};
  spec.server = ew::core::IPv4Address{157, 240, 1, 1};
  spec.web = ew::dpi::WebProtocol::kTls;
  spec.server_name = "www.facebook.com";
  spec.response_bytes = 9'000;
  spec.start = ew::core::Timestamp::from_date_time({2016, 3, 4}, 12);
  spec.rtt_us = 12'000;
  for (auto& f : ew::synth::render_conversation(spec)) trace.add(std::move(f));
  return trace;
}

void put32(std::ofstream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put16(std::ofstream& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

/// Hand-build a little-endian pcap with an arbitrary magic and snaplen.
void write_raw_pcap(const fs::path& path, std::uint32_t magic, std::uint32_t snaplen,
                    std::initializer_list<std::pair<std::uint32_t, std::uint32_t>> frames) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  put32(out, magic);
  put16(out, 2);
  put16(out, 4);
  put32(out, 0);
  put32(out, 0);
  put32(out, snaplen);
  put32(out, 1);  // Ethernet
  for (const auto& [incl, orig] : frames) {
    put32(out, 1000);  // sec
    put32(out, 500);   // frac
    put32(out, incl);
    put32(out, orig);
    for (std::uint32_t i = 0; i < incl; ++i) out.put('\0');
  }
}

}  // namespace

TEST(Pcap, WriteReadRoundTrip) {
  TempFile file;
  const auto trace = sample_trace();
  const auto written = ew::net::write_pcap(file.path, trace);
  EXPECT_GT(written, 24u);

  const auto loaded = ew::net::load_pcap(file.path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].timestamp, trace[i].timestamp);
    EXPECT_EQ((*loaded)[i].data, trace[i].data);
  }
}

TEST(Pcap, StatsCountFramesAndBytes) {
  TempFile file;
  const auto trace = sample_trace();
  ew::net::write_pcap(file.path, trace);
  std::size_t n = 0;
  const auto stats = ew::net::read_pcap(file.path, [&n](ew::net::Frame&&) { ++n; });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames, trace.size());
  EXPECT_EQ(n, trace.size());
  EXPECT_EQ(stats->truncated, 0u);
  std::uint64_t bytes = 0;
  for (const auto& f : trace) bytes += f.data.size();
  EXPECT_EQ(stats->bytes, bytes);
}

TEST(Pcap, SnaplenTruncatesAndIsReported) {
  TempFile file;
  const auto trace = sample_trace();
  ew::net::write_pcap(file.path, trace, 100);
  const auto stats = ew::net::read_pcap(file.path, [](ew::net::Frame&& f) {
    EXPECT_LE(f.data.size(), 100u);
  });
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->truncated, 0u);
}

TEST(Pcap, RejectsGarbageAndMissingFiles) {
  const auto missing = ew::net::load_pcap("/nonexistent/file.pcap");
  EXPECT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error(), ew::core::Errc::kIoError);
  TempFile file;
  std::ofstream(file.path, std::ios::binary) << "this is not a pcap file at all";
  const auto garbage = ew::net::load_pcap(file.path);
  EXPECT_FALSE(garbage.has_value());
  EXPECT_EQ(garbage.error(), ew::core::Errc::kBadMagic);
}

TEST(Pcap, ShortGlobalHeaderIsTruncatedNotBadMagic) {
  TempFile file;
  std::ofstream(file.path, std::ios::binary).write("\xd4\xc3\xb2\xa1\x02\x00", 6);
  EXPECT_EQ(ew::net::load_pcap(file.path).error(), ew::core::Errc::kTruncated);
}

TEST(Pcap, MicrosecondFilesReportNoNanosecondFlag) {
  TempFile file;
  ew::net::write_pcap(file.path, sample_trace());
  const auto stats = ew::net::read_pcap(file.path, [](ew::net::Frame&&) {});
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->nanosecond_timestamps);
  EXPECT_EQ(stats->oversnap, 0u);
}

TEST(Pcap, NanosecondMagicIsFlaggedAndTruncatedToMicros) {
  TempFile file;
  write_raw_pcap(file.path, 0xa1b23c4d, 65535, {{10, 10}});
  std::vector<ew::net::Frame> frames;
  const auto stats =
      ew::net::read_pcap(file.path, [&](ew::net::Frame&& f) { frames.push_back(std::move(f)); });
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->nanosecond_timestamps);
  ASSERT_EQ(frames.size(), 1u);
  // 1000 s + 500 ns floors to exactly 1000 s in microseconds.
  EXPECT_EQ(frames[0].timestamp.micros(), 1000 * 1'000'000);
}

TEST(Pcap, ZeroSnaplenIsRejectedAsCorrupt) {
  TempFile file;
  write_raw_pcap(file.path, 0xa1b2c3d4, 0, {{10, 10}});
  const auto stats = ew::net::read_pcap(file.path, [](ew::net::Frame&&) {});
  EXPECT_FALSE(stats.has_value());
  EXPECT_EQ(stats.error(), ew::core::Errc::kCorrupt);
}

TEST(Pcap, OversnapFramesAreCountedNotDropped) {
  TempFile file;
  // snaplen 64 but one record claims 100 captured bytes (malformed writer).
  write_raw_pcap(file.path, 0xa1b2c3d4, 64, {{40, 40}, {100, 100}});
  std::size_t n = 0;
  const auto stats = ew::net::read_pcap(file.path, [&n](ew::net::Frame&&) { ++n; });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames, 2u);
  EXPECT_EQ(n, 2u);  // delivered, not dropped
  EXPECT_EQ(stats->oversnap, 1u);
}

TEST(Pcap, TruncatedLastRecordEndsGracefully) {
  TempFile file;
  const auto trace = sample_trace();
  ew::net::write_pcap(file.path, trace);
  // Chop the file mid-record.
  const auto size = fs::file_size(file.path);
  fs::resize_file(file.path, size - 7);
  std::size_t n = 0;
  const auto stats = ew::net::read_pcap(file.path, [&n](ew::net::Frame&&) { ++n; });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames, trace.size() - 1);
  EXPECT_EQ(n, trace.size() - 1);
}

TEST(Pcap, ProbeConsumesPcapReplay) {
  TempFile file;
  ew::net::write_pcap(file.path, sample_trace());
  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};
  const auto stats =
      ew::net::read_pcap(file.path, [&](ew::net::Frame&& f) { probe.process(f); });
  ASSERT_TRUE(stats.has_value());
  probe.finish();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].server_name, "www.facebook.com");
  EXPECT_EQ(records[0].down.bytes, 9'000u);
}
