// The resilient probe runtime (DESIGN §11): overload state machine,
// bounded backoff, quarantine log, pipeline checkpoint codec, and the
// Supervisor's accounting invariant — every offered frame ends in exactly
// one bucket (ingested, shed, quarantined). Crash-recovery golden tests
// live in test_chaos.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/bytes.hpp"
#include "probe/sharded_probe.hpp"
#include "runtime/backoff.hpp"
#include "runtime/chaos.hpp"
#include "runtime/health.hpp"
#include "runtime/overload.hpp"
#include "runtime/pipeline_checkpoint.hpp"
#include "runtime/quarantine.hpp"
#include "runtime/supervisor.hpp"
#include "storage/codec.hpp"
#include "storage/datalake.hpp"
#include "storage/fault_injection.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;
using ew::runtime::BackoffPolicy;
using ew::runtime::HealthState;
using ew::runtime::OverloadController;
using ew::runtime::OverloadPolicy;

namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("ew_runtime_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministic single-day workload: DNS lookups + TLS/HTTP conversations
/// across a handful of clients (a compact cousin of test_parallel's golden
/// workload).
std::vector<ew::net::Frame> workload(int clients = 12) {
  constexpr IPv4Address kResolver{10, 255, 255, 53};
  struct Site {
    IPv4Address ip;
    const char* name;
  };
  const Site sites[] = {
      {{93, 184, 216, 34}, "static.example.com"},
      {{31, 13, 86, 36}, "edge-star.facebook.com"},
      {{173, 194, 11, 7}, "r3---sn.googlevideo.com"},
  };
  std::vector<ew::net::Frame> frames;
  for (int c = 0; c < clients; ++c) {
    const IPv4Address client{10, 0, 4, static_cast<std::uint8_t>(10 + c)};
    for (int k = 0; k < 2; ++k) {
      const auto& site = sites[static_cast<std::size_t>((c + k) % 3)];
      const std::int64_t start_us = 100'000'000LL + (c * 977 + k * 23081) * 1000LL;
      const IPv4Address addrs[] = {site.ip};
      frames.push_back(ew::synth::render_dns_response(client, kResolver, site.name, addrs,
                                                      Timestamp{start_us - 40'000}));
      ew::synth::ConversationSpec spec;
      spec.client = client;
      spec.server = site.ip;
      spec.client_port = static_cast<std::uint16_t>(42000 + c * 4 + k);
      spec.web = k == 0 ? ew::dpi::WebProtocol::kTls : ew::dpi::WebProtocol::kHttp;
      spec.server_name = site.name;
      spec.response_bytes = static_cast<std::size_t>(1200 + c * 211 + k * 733);
      spec.start = Timestamp{start_us};
      spec.rtt_us = 9'000 + c * 300;
      spec.teardown = (c + k) % 3 != 0;
      const auto conv = ew::synth::render_conversation(spec);
      frames.insert(frames.end(), conv.begin(), conv.end());
    }
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const ew::net::Frame& a, const ew::net::Frame& b) {
                     return a.timestamp < b.timestamp;
                   });
  return frames;
}

std::vector<std::byte> encode_stream(const std::vector<ew::flow::FlowRecord>& records) {
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  return {w.view().begin(), w.view().end()};
}

}  // namespace

// ------------------------------------------------------ OverloadController

TEST(OverloadController, EscalatesAfterSustainedPressureOnly) {
  OverloadPolicy policy;
  policy.escalate_after = 3;
  OverloadController ctl{policy};
  EXPECT_EQ(ctl.state(), HealthState::kHealthy);

  ctl.observe(0.9);
  ctl.observe(0.9);
  EXPECT_EQ(ctl.state(), HealthState::kHealthy);  // streak not long enough
  ctl.observe(0.5);                               // hysteresis band resets it
  ctl.observe(0.9);
  ctl.observe(0.9);
  EXPECT_EQ(ctl.state(), HealthState::kHealthy);

  ctl.observe(0.9);
  EXPECT_EQ(ctl.state(), HealthState::kDegraded);
  EXPECT_EQ(ctl.sample_shift(), 1u);

  for (int i = 0; i < 3; ++i) ctl.observe(1.0);
  EXPECT_EQ(ctl.state(), HealthState::kShedding);
  EXPECT_EQ(ctl.sample_shift(), 2u);
  ASSERT_EQ(ctl.transitions().size(), 2u);
  EXPECT_EQ(ctl.transitions()[0].from, HealthState::kHealthy);
  EXPECT_EQ(ctl.transitions()[1].to, HealthState::kShedding);
}

TEST(OverloadController, RecoversOneLevelAtATime) {
  OverloadPolicy policy;
  policy.escalate_after = 1;
  policy.recover_after = 4;
  OverloadController ctl{policy};
  ctl.observe(1.0);
  ctl.observe(1.0);
  ctl.observe(1.0);
  ASSERT_EQ(ctl.sample_shift(), 3u);

  for (int i = 0; i < 4; ++i) ctl.observe(0.0);
  EXPECT_EQ(ctl.sample_shift(), 2u);
  for (int i = 0; i < 4; ++i) ctl.observe(0.0);
  EXPECT_EQ(ctl.sample_shift(), 1u);
  EXPECT_EQ(ctl.state(), HealthState::kDegraded);
  for (int i = 0; i < 4; ++i) ctl.observe(0.1);
  EXPECT_EQ(ctl.state(), HealthState::kHealthy);
  // Fully recovered: stays put.
  for (int i = 0; i < 8; ++i) ctl.observe(0.0);
  EXPECT_EQ(ctl.sample_shift(), 0u);
}

TEST(OverloadController, ShiftIsCappedAtPolicyMax) {
  OverloadPolicy policy;
  policy.escalate_after = 1;
  policy.max_shift = 2;
  OverloadController ctl{policy};
  for (int i = 0; i < 10; ++i) ctl.observe(1.0);
  EXPECT_EQ(ctl.sample_shift(), 2u);
}

TEST(OverloadController, ShouldKeepIsDeterministicOneInTwoToTheShift) {
  OverloadPolicy policy;
  policy.escalate_after = 1;
  OverloadController ctl{policy};
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(ctl.should_keep(i));
  ctl.observe(1.0);
  ctl.observe(1.0);  // shift 2: keep 1 in 4
  std::uint64_t kept = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (ctl.should_keep(i)) ++kept;
    EXPECT_EQ(ctl.should_keep(i), i % 4 == 0) << i;
  }
  EXPECT_EQ(kept, 25u);
}

TEST(OverloadController, SaveLoadRoundtripsTheMachine) {
  OverloadPolicy policy;
  policy.escalate_after = 3;
  OverloadController a{policy};
  a.observe(1.0);
  a.observe(1.0);
  a.observe(1.0);
  a.observe(1.0);  // shift 1 + one pressure observation into the next streak

  OverloadController b{policy};
  b.load(a.save());
  EXPECT_EQ(b.sample_shift(), a.sample_shift());
  // Two more pressured observations escalate both machines identically.
  a.observe(1.0);
  a.observe(1.0);
  b.observe(1.0);
  b.observe(1.0);
  EXPECT_EQ(b.sample_shift(), a.sample_shift());
  EXPECT_EQ(b.state(), HealthState::kShedding);
}

// ---------------------------------------------------------------- Backoff

TEST(Backoff, DelaysGrowExponentiallyAndCap) {
  BackoffPolicy policy;
  policy.initial = std::chrono::microseconds{1'000};
  policy.multiplier = 10.0;
  policy.cap = std::chrono::microseconds{50'000};
  EXPECT_EQ(policy.delay(1).count(), 1'000);
  EXPECT_EQ(policy.delay(2).count(), 10'000);
  EXPECT_EQ(policy.delay(3).count(), 50'000);  // capped
  EXPECT_EQ(policy.delay(9).count(), 50'000);
}

TEST(Backoff, RetriesTransientErrorsUntilSuccess) {
  BackoffPolicy policy;
  policy.max_attempts = 5;
  std::vector<std::chrono::microseconds> slept;
  int calls = 0;
  std::uint64_t retries = 0;
  const auto result = ew::runtime::with_backoff(
      policy, [&](std::chrono::microseconds us) { slept.push_back(us); },
      [&]() -> ew::core::Result<int> {
        if (++calls < 3) return ew::core::Errc::kNoSpace;
        return 42;
      },
      &retries);
  ASSERT_TRUE(result);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], policy.delay(1));
  EXPECT_EQ(slept[1], policy.delay(2));
}

TEST(Backoff, DoesNotRetryNonTransientErrors) {
  int calls = 0;
  const auto result = ew::runtime::with_backoff(
      BackoffPolicy{}, nullptr, [&]() -> ew::core::Result<int> {
        ++calls;
        return ew::core::Errc::kCorrupt;
      });
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error(), ew::core::Errc::kCorrupt);
  EXPECT_EQ(calls, 1);
}

TEST(Backoff, GivesUpAfterMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const auto result = ew::runtime::with_backoff(
      policy, nullptr, [&]() -> ew::core::Result<int> {
        ++calls;
        return ew::core::Errc::kIoError;
      });
  EXPECT_FALSE(result);
  EXPECT_EQ(calls, 3);
}

// ---------------------------------------------------------- QuarantineLog

TEST(QuarantineLog, AppendAndReadBackRoundtrip) {
  const auto dir = fresh_dir("quarantine");
  ew::runtime::QuarantineLog log{dir / "poison.ewq"};
  ASSERT_TRUE(log.open());
  ew::net::Frame f1{Timestamp{1'000'000}, ew::core::to_bytes("deadbeef")};
  ew::net::Frame f2{Timestamp{2'000'000}, ew::core::to_bytes("poison-frame")};
  ASSERT_TRUE(log.append(17, f1));
  ASSERT_TRUE(log.append(99, f2));
  ASSERT_TRUE(log.sync());
  EXPECT_EQ(log.entries(), 2u);
  log.close();

  const auto entries = ew::runtime::QuarantineLog::read_all(dir / "poison.ewq");
  ASSERT_TRUE(entries);
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].seq, 17u);
  EXPECT_EQ((*entries)[0].data, f1.data);
  EXPECT_EQ((*entries)[1].seq, 99u);
  EXPECT_EQ((*entries)[1].timestamp.micros(), 2'000'000);
}

TEST(QuarantineLog, ResumeTruncatesBackToCheckpointedSize) {
  const auto dir = fresh_dir("quarantine_resume");
  const auto path = dir / "poison.ewq";
  std::uint64_t checkpointed_bytes = 0;
  {
    ew::runtime::QuarantineLog log{path};
    ASSERT_TRUE(log.open());
    ASSERT_TRUE(log.append(1, {Timestamp{1}, ew::core::to_bytes("keep")}));
    checkpointed_bytes = log.bytes();
    // Post-checkpoint entry: must vanish on resume.
    ASSERT_TRUE(log.append(2, {Timestamp{2}, ew::core::to_bytes("discard")}));
    log.close();
  }
  {
    ew::runtime::QuarantineLog log{path};
    ASSERT_TRUE(log.open(checkpointed_bytes, 1));
    EXPECT_EQ(log.entries(), 1u);
    ASSERT_TRUE(log.append(3, {Timestamp{3}, ew::core::to_bytes("replayed")}));
    log.close();
  }
  const auto entries = ew::runtime::QuarantineLog::read_all(path);
  ASSERT_TRUE(entries);
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].seq, 1u);
  EXPECT_EQ((*entries)[1].seq, 3u);
}

// ----------------------------------------------------- PipelineCheckpoint

namespace {

ew::runtime::PipelineCheckpoint sample_checkpoint() {
  ew::runtime::PipelineCheckpoint cp;
  cp.replay_from = 1234;
  cp.probe_next_seq = 1100;
  cp.frames_offered = 1234;
  cp.frames_ingested = 1090;
  cp.shed_sampled = 100;
  cp.shed_backpressure = 34;
  cp.frames_quarantined = 10;
  cp.append_retries = 3;
  cp.append_failures = 1;
  cp.checkpoints_written = 7;
  cp.stalls_detected = 2;
  cp.controller = {2, 1, 5, 900};
  cp.quarantine_bytes = 77;
  cp.quarantine_entries = 10;
  cp.shard_state = {ew::core::to_bytes("shard-zero"), ew::core::to_bytes("shard-one")};
  ew::runtime::PipelineCheckpoint::DayState d;
  d.day = {2017, 6, 15};
  d.lake_bytes = 4096;
  d.quality = {1234, 1090, 134, 10};
  cp.days.push_back(d);
  ew::flow::FlowRecord record;
  record.client_ip = IPv4Address{10, 0, 4, 1};
  record.server_ip = IPv4Address{93, 184, 216, 34};
  record.first_packet = Timestamp{100'000'000};
  record.ingest_seq = 55;
  cp.pending.push_back(record);
  return cp;
}

}  // namespace

TEST(PipelineCheckpoint, SaveLoadRoundtrip) {
  const auto dir = fresh_dir("ewpc");
  const auto path = dir / "pipeline.ewpc";
  const auto cp = sample_checkpoint();
  ASSERT_TRUE(ew::runtime::save_pipeline_checkpoint(cp, path));

  const auto loaded = ew::runtime::load_pipeline_checkpoint(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->replay_from, cp.replay_from);
  EXPECT_EQ(loaded->probe_next_seq, cp.probe_next_seq);
  EXPECT_EQ(loaded->frames_ingested, cp.frames_ingested);
  EXPECT_EQ(loaded->shed_backpressure, cp.shed_backpressure);
  EXPECT_EQ(loaded->controller.shift, 2u);
  EXPECT_EQ(loaded->controller.observations, 900u);
  EXPECT_EQ(loaded->quarantine_bytes, 77u);
  ASSERT_EQ(loaded->shard_state.size(), 2u);
  EXPECT_EQ(loaded->shard_state[1], ew::core::to_bytes("shard-one"));
  ASSERT_EQ(loaded->days.size(), 1u);
  EXPECT_EQ(loaded->days[0].day, (ew::core::CivilDate{2017, 6, 15}));
  EXPECT_EQ(loaded->days[0].lake_bytes, 4096u);
  EXPECT_TRUE(loaded->days[0].quality.reconciles());
  ASSERT_EQ(loaded->pending.size(), 1u);
  EXPECT_EQ(loaded->pending[0].client_ip, (IPv4Address{10, 0, 4, 1}));
  EXPECT_EQ(loaded->pending[0].first_packet.micros(), 100'000'000);
}

TEST(PipelineCheckpoint, MissingFileIsNotFound) {
  const auto dir = fresh_dir("ewpc_missing");
  const auto loaded = ew::runtime::load_pipeline_checkpoint(dir / "absent.ewpc");
  ASSERT_FALSE(loaded);
  EXPECT_EQ(loaded.error(), ew::core::Errc::kNotFound);
}

TEST(PipelineCheckpoint, CorruptPayloadIsRejected) {
  const auto dir = fresh_dir("ewpc_corrupt");
  const auto path = dir / "pipeline.ewpc";
  ASSERT_TRUE(ew::runtime::save_pipeline_checkpoint(sample_checkpoint(), path));
  // Flip one payload byte.
  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::vector<char> data(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    return data;
  }();
  bytes[bytes.size() - 3] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto loaded = ew::runtime::load_pipeline_checkpoint(path);
  ASSERT_FALSE(loaded);
  EXPECT_EQ(loaded.error(), ew::core::Errc::kCorrupt);
}

TEST(PipelineCheckpoint, TruncatedFileIsRejectedNotCrashed) {
  const auto dir = fresh_dir("ewpc_trunc");
  const auto path = dir / "pipeline.ewpc";
  ASSERT_TRUE(ew::runtime::save_pipeline_checkpoint(sample_checkpoint(), path));
  const auto full = std::filesystem::file_size(path);
  for (const std::uintmax_t keep : {std::uintmax_t{0}, std::uintmax_t{4}, full / 2,
                                    full - 1}) {
    std::filesystem::resize_file(path, keep);
    EXPECT_FALSE(ew::runtime::load_pipeline_checkpoint(path)) << "keep=" << keep;
    // Restore for the next iteration.
    ASSERT_TRUE(ew::runtime::save_pipeline_checkpoint(sample_checkpoint(), path));
  }
}

// --------------------------------------------------------- ChaosSchedule

TEST(ChaosSchedule, PoisonDecisionsAreSeedDeterministic) {
  ew::runtime::ChaosConfig cfg;
  cfg.seed = 42;
  cfg.poison_every = 16;
  ew::runtime::ChaosSchedule a{cfg};
  ew::runtime::ChaosSchedule b{cfg};
  std::uint64_t poisons = 0;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    EXPECT_EQ(a.poisons(seq), b.poisons(seq));
    if (a.poisons(seq)) ++poisons;
  }
  EXPECT_GT(poisons, 50u);  // roughly 1/16
  EXPECT_LT(poisons, 250u);

  cfg.seed = 43;
  ew::runtime::ChaosSchedule c{cfg};
  bool differs = false;
  for (std::uint64_t seq = 0; seq < 2000 && !differs; ++seq) {
    differs = a.poisons(seq) != c.poisons(seq);
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------- Supervisor

namespace {

ew::runtime::SupervisorConfig calm_config(const std::filesystem::path& dir) {
  ew::runtime::SupervisorConfig cfg;
  cfg.probe.shards = 2;
  cfg.probe.queue_capacity = 4096;  // never backpressures in calm tests
  cfg.checkpoint_path = dir / "pipeline.ewpc";
  cfg.quarantine_path = dir / "poison.ewq";
  return cfg;
}

}  // namespace

TEST(Supervisor, CalmRunIngestsEverythingAndMatchesShardedProbe) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_calm");
  ew::storage::DataLake lake{dir / "lake"};

  ew::runtime::Supervisor sup{lake, calm_config(dir)};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());

  const auto h = sup.health();
  EXPECT_EQ(h.state, HealthState::kHealthy);
  EXPECT_EQ(h.frames_offered, frames.size());
  EXPECT_EQ(h.frames_ingested, frames.size());
  EXPECT_EQ(h.shed_total(), 0u);
  EXPECT_EQ(h.frames_quarantined, 0u);
  EXPECT_TRUE(h.reconciles());

  // The lake holds exactly what an unsupervised ShardedProbe would export.
  ew::probe::ShardedProbeConfig scfg;
  scfg.shards = 2;
  scfg.queue_capacity = 4096;
  ew::probe::ShardedProbe reference{scfg};
  for (const auto& f : frames) reference.ingest(f);
  const auto expected = reference.finish();
  ASSERT_FALSE(expected.empty());

  const auto days = lake.days();
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(encode_stream(lake.read_day(days[0])), encode_stream(expected));

  const auto quality = sup.day_quality();
  ASSERT_TRUE(quality.contains(days[0]));
  EXPECT_TRUE(quality.at(days[0]).complete());
  EXPECT_DOUBLE_EQ(quality.at(days[0]).correction_factor(), 1.0);
}

TEST(Supervisor, OverloadShedsWithExactReconciliation) {
  const auto frames = workload(24);
  const auto dir = fresh_dir("sup_overload");
  ew::storage::DataLake lake{dir / "lake"};

  auto cfg = calm_config(dir);
  cfg.probe.shards = 2;
  cfg.probe.queue_capacity = 4;  // tiny rings
  cfg.overload.observe_every = 4;
  cfg.overload.escalate_after = 2;
  cfg.overload.ingest_retries = 2;  // shed quickly instead of spinning
  ew::runtime::ChaosConfig chaos_cfg;
  chaos_cfg.busy_spin = 2'000;  // slow workers: sustained feeder pressure
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());

  const auto h = sup.health();
  EXPECT_EQ(h.frames_offered, frames.size());
  EXPECT_GT(h.shed_total(), 0u) << "tiny rings plus slow workers must shed";
  // The acceptance invariant: offered = ingested + shed + quarantined,
  // exactly, after the pipeline drained.
  EXPECT_TRUE(h.reconciles())
      << "offered=" << h.frames_offered << " ingested=" << h.frames_ingested
      << " shed=" << h.shed_total() << " quarantined=" << h.frames_quarantined;

  // Per-day accounting reconciles too, and the correction factor reflects
  // the shed volume.
  std::uint64_t offered = 0;
  for (const auto& [day, q] : sup.day_quality()) {
    EXPECT_TRUE(q.reconciles()) << day.to_string();
    EXPECT_GE(q.correction_factor(), 1.0);
    offered += q.frames_offered;
  }
  EXPECT_EQ(offered, frames.size());
  EXPECT_FALSE(sup.health().format().empty());
}

TEST(Supervisor, PoisonFramesAreQuarantinedAndAccounted) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_poison");
  ew::storage::DataLake lake{dir / "lake"};

  auto cfg = calm_config(dir);
  ew::runtime::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 7;
  chaos_cfg.poison_every = 40;
  chaos_cfg.suspect_every = 0;  // plain poisons: state untouched
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());

  // Every frame was accepted (huge queues), so probe seqs are 0..N-1 and
  // the poison count is exactly what the schedule dictates.
  std::uint64_t expected_poisons = 0;
  for (std::uint64_t seq = 0; seq < frames.size(); ++seq) {
    if (chaos.poisons(seq)) ++expected_poisons;
  }
  ASSERT_GT(expected_poisons, 0u);

  const auto h = sup.health();
  EXPECT_EQ(h.frames_quarantined, expected_poisons);
  EXPECT_EQ(h.frames_ingested, frames.size() - expected_poisons);
  EXPECT_TRUE(h.reconciles());

  const auto entries = ew::runtime::QuarantineLog::read_all(dir / "poison.ewq");
  ASSERT_TRUE(entries);
  EXPECT_EQ(entries->size(), expected_poisons);
  for (const auto& e : *entries) EXPECT_TRUE(chaos.poisons(e.seq)) << e.seq;
}

TEST(Supervisor, SuspectPoisonRollsBackToSnapshotAndKeepsRunning) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_suspect");
  ew::storage::DataLake lake{dir / "lake"};

  auto cfg = calm_config(dir);
  cfg.probe.snapshot_interval = 64;
  ew::runtime::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 11;
  chaos_cfg.poison_every = 50;
  chaos_cfg.suspect_every = 1;  // every poison is state-suspect
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());

  const auto h = sup.health();
  EXPECT_GT(h.frames_quarantined, 0u);
  EXPECT_TRUE(h.reconciles());
  // Rollbacks happened, and the pipeline still delivered records.
  EXPECT_FALSE(lake.days().empty());
  EXPECT_GT(lake.read_day(lake.days().front()).size(), 0u);
}

TEST(Supervisor, WatchdogDetectsStallAndRecovers) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_stall");
  ew::storage::DataLake lake{dir / "lake"};

  auto cfg = calm_config(dir);
  cfg.probe.shards = 1;  // one ring: the stalled worker is the only drain
  cfg.probe.queue_capacity = 8;
  cfg.overload.observe_every = 1;
  cfg.overload.ingest_retries = 1;
  cfg.stall_strikes = 2;
  ew::runtime::ChaosSchedule chaos{{}};
  chaos.arm_stall(5);  // worker blocks at the sixth accepted frame
  cfg.probe.frame_inspector = chaos.inspector();

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  std::size_t fed = 0;
  for (; fed < frames.size(); ++fed) {
    sup.offer(frames[fed]);
    if (sup.health().stalls_detected > 0) break;
  }
  ASSERT_LT(fed, frames.size()) << "watchdog never fired";
  EXPECT_GE(sup.health().stalls_detected, 1u);

  chaos.release_stall();
  for (++fed; fed < frames.size(); ++fed) sup.offer(frames[fed]);
  ASSERT_TRUE(sup.finish());
  const auto h = sup.health();
  EXPECT_TRUE(h.reconciles());
  // After release the shard drained: no shard reports a live stall.
  for (const auto& s : h.shards) EXPECT_FALSE(s.stalled);
}

TEST(Supervisor, AnnotateThreadsCaptureQualityIntoDayAggregate) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_annotate");
  ew::storage::DataLake lake{dir / "lake"};

  auto cfg = calm_config(dir);
  cfg.probe.queue_capacity = 4;
  cfg.overload.observe_every = 2;
  cfg.overload.escalate_after = 2;
  cfg.overload.ingest_retries = 1;
  ew::runtime::ChaosConfig chaos_cfg;
  chaos_cfg.busy_spin = 2'000;
  ew::runtime::ChaosSchedule chaos{chaos_cfg};
  cfg.probe.frame_inspector = chaos.inspector();

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());

  ASSERT_FALSE(lake.days().empty());
  ew::analytics::DayAggregate agg;
  agg.date = lake.days().front();
  EXPECT_TRUE(agg.capture.complete());  // untouched default
  sup.annotate(agg);
  EXPECT_EQ(agg.capture.frames_offered, sup.day_quality().at(agg.date).frames_offered);
  EXPECT_TRUE(agg.capture.reconciles());

  // Merging two annotated aggregates sums the capture accounting.
  ew::analytics::DayAggregate other;
  other.date = agg.date;
  sup.annotate(other);
  const auto offered = agg.capture.frames_offered;
  agg.merge(other);
  EXPECT_EQ(agg.capture.frames_offered, 2 * offered);
}

TEST(Supervisor, AppendRetriesTransientDiskFaultWithBackoff) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_retry");
  ew::storage::DataLake lake{dir / "lake"};
  // First lake write handle hits ENOSPC mid-stream; later handles are
  // healthy — the classic "log rotation freed space" sequence.
  lake.set_file_factory(ew::storage::FaultyFile::factory_once(
      {ew::storage::FaultKind::kNoSpace, /*at_byte=*/256}));

  auto cfg = calm_config(dir);
  std::vector<std::chrono::microseconds> slept;
  cfg.sleeper = [&](std::chrono::microseconds us) { slept.push_back(us); };

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);
  ASSERT_TRUE(sup.finish());

  const auto h = sup.health();
  EXPECT_GE(h.append_retries, 1u);
  EXPECT_EQ(h.append_failures, 0u) << "retry must have landed the batch";
  EXPECT_FALSE(slept.empty());
  ASSERT_EQ(lake.days().size(), 1u);
  EXPECT_TRUE(lake.fsck().clean());
}

TEST(Supervisor, ExhaustedRetriesParkRecordsAndLaterFlushDelivers) {
  const auto frames = workload();
  const auto dir = fresh_dir("sup_park");
  ew::storage::DataLake lake{dir / "lake"};

  auto cfg = calm_config(dir);
  cfg.backoff.max_attempts = 2;

  ew::runtime::Supervisor sup{lake, cfg};
  ASSERT_TRUE(sup.start());
  for (const auto& f : frames) sup.offer(f);

  // Dead disk when the drain flushes: every attempt fails, the batch parks.
  lake.set_file_factory([] {
    return std::make_unique<ew::storage::FaultyFile>(
        ew::storage::make_posix_file(),
        ew::storage::FaultPlan{ew::storage::FaultKind::kNoSpace, 0});
  });
  const auto first = sup.finish();
  ASSERT_FALSE(first);
  EXPECT_EQ(first.error(), ew::core::Errc::kNoSpace);
  const auto h = sup.health();
  EXPECT_GE(h.append_failures, 1u);
  EXPECT_EQ(h.last_append_error, ew::core::Errc::kNoSpace);
  EXPECT_TRUE(lake.days().empty()) << "failed append must leave no partial file";

  // Space returns; a second finish() delivers the parked batch.
  lake.set_file_factory({});
  ASSERT_TRUE(sup.finish());
  ASSERT_EQ(lake.days().size(), 1u);
  EXPECT_TRUE(lake.fsck().clean());
  EXPECT_GT(lake.read_day(lake.days()[0]).size(), 0u);
}
