// Flow table, TCP state machine and RTT estimator tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "dpi/parsers.hpp"
#include "flow/table.hpp"
#include "net/packet.hpp"

namespace ew = edgewatch;
using ew::core::IPv4Address;
using ew::core::Timestamp;
using ew::flow::FlowCloseReason;
using ew::flow::FlowRecord;
using ew::flow::FlowTable;
using ew::flow::FlowTableConfig;
using ew::net::PacketBuilder;
using ew::net::TcpFlags;

namespace {

constexpr IPv4Address kClient{10, 0, 0, 5};
constexpr IPv4Address kServer{157, 240, 1, 1};

struct Harness {
  std::vector<FlowRecord> records;
  // Named sink object: FlowTable's ExportSink is a non-owning FunctionRef.
  struct Sink {
    Harness* h;
    void operator()(FlowRecord&& r) const { h->records.push_back(std::move(r)); }
  } sink{this};
  FlowTable table;

  explicit Harness(FlowTableConfig cfg = {}) : table(cfg, sink) {}

  void feed(const ew::net::Frame& frame) {
    const auto pkt = ew::net::decode_frame(frame);
    ASSERT_TRUE(pkt.has_value());
    table.ingest(*pkt);
    table.advance(frame.timestamp);
  }
};

Timestamp us(std::int64_t v) { return Timestamp{v}; }

/// A complete TCP conversation: handshake, client request, server response
/// (returns frames in time order). `rtt_us` is the probe→server delay.
std::vector<ew::net::Frame> tcp_conversation(std::int64_t t0, std::int64_t rtt_us,
                                             std::vector<std::byte> client_payload,
                                             std::size_t response_bytes,
                                             std::uint16_t cport = 40000) {
  std::vector<ew::net::Frame> frames;
  std::uint32_t cseq = 1000;
  std::uint32_t sseq = 9000;
  auto cl = [&](std::int64_t at, std::uint8_t flags, std::vector<std::byte> payload = {}) {
    auto b = PacketBuilder{}
                 .ts(us(at))
                 .ip(kClient, kServer)
                 .tcp(cport, 443, cseq, sseq, flags)
                 .payload(std::move(payload));
    frames.push_back(b.build());
  };
  auto sv = [&](std::int64_t at, std::uint8_t flags, std::size_t bytes = 0) {
    std::vector<std::byte> payload(bytes, std::byte{0x55});
    auto b = PacketBuilder{}
                 .ts(us(at))
                 .ip(kServer, kClient)
                 .tcp(443, cport, sseq, cseq, flags)
                 .payload(std::move(payload));
    frames.push_back(b.build());
  };

  cl(t0, TcpFlags::kSyn);
  cseq += 1;
  sv(t0 + rtt_us, TcpFlags::kSyn | TcpFlags::kAck);
  sseq += 1;
  cl(t0 + rtt_us + 50, TcpFlags::kAck);
  const auto req_len = static_cast<std::uint32_t>(client_payload.size());
  cl(t0 + rtt_us + 100, TcpFlags::kAck | TcpFlags::kPsh, std::move(client_payload));
  cseq += req_len;
  sv(t0 + 2 * rtt_us + 100, TcpFlags::kAck);  // ACK of the request
  sv(t0 + 2 * rtt_us + 200, TcpFlags::kAck | TcpFlags::kPsh, response_bytes);
  sseq += static_cast<std::uint32_t>(response_bytes);
  cl(t0 + 2 * rtt_us + 300, TcpFlags::kAck);
  cl(t0 + 2 * rtt_us + 400, TcpFlags::kFin | TcpFlags::kAck);
  cseq += 1;
  sv(t0 + 3 * rtt_us + 400, TcpFlags::kFin | TcpFlags::kAck);
  sseq += 1;
  cl(t0 + 3 * rtt_us + 500, TcpFlags::kAck);
  return frames;
}

}  // namespace

TEST(FlowTable, CompleteTlsConversationExportsOneRecord) {
  Harness h;
  const std::string alpn[] = {"h2"};
  auto frames = tcp_conversation(1'000'000, 20'000,
                                 ew::dpi::build_client_hello("www.facebook.com", alpn), 5000);
  for (const auto& f : frames) h.feed(f);
  // Teardown done; linger must elapse before export.
  h.table.advance(us(20'000'000));
  ASSERT_EQ(h.records.size(), 1u);
  const FlowRecord& r = h.records[0];
  EXPECT_EQ(r.client_ip, kClient);
  EXPECT_EQ(r.server_ip, kServer);
  EXPECT_EQ(r.server_port, 443);
  EXPECT_TRUE(r.handshake_completed);
  EXPECT_EQ(r.close_reason, FlowCloseReason::kTcpTeardown);
  EXPECT_EQ(r.server_name, "www.facebook.com");
  EXPECT_EQ(r.name_source, ew::flow::NameSource::kTlsSni);
  EXPECT_EQ(r.web, ew::dpi::WebProtocol::kHttp2);
  EXPECT_EQ(r.down.bytes, 5000u);
  EXPECT_GT(r.up.bytes, 0u);
  EXPECT_EQ(h.table.active_flows(), 0u);
}

TEST(FlowTable, RttSamplesMatchConfiguredDelay) {
  Harness h;
  const std::int64_t rtt = 30'000;  // 30 ms
  auto frames = tcp_conversation(0, rtt, ew::dpi::build_http_request("x.com"), 100);
  for (const auto& f : frames) h.feed(f);
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  const auto& stats = h.records[0].rtt;
  ASSERT_GE(stats.samples, 2u);  // SYN and the request segment
  EXPECT_NEAR(static_cast<double>(stats.min_us), rtt, 1000.0);
  EXPECT_NEAR(stats.min_ms(), 30.0, 1.0);
}

TEST(FlowTable, RstClosesImmediately) {
  Harness h;
  h.feed(PacketBuilder{}.ts(us(0)).ip(kClient, kServer).tcp(40000, 443, 1, 0, TcpFlags::kSyn).build());
  h.feed(PacketBuilder{}
             .ts(us(1000))
             .ip(kServer, kClient)
             .tcp(443, 40000, 0, 2, TcpFlags::kRst | TcpFlags::kAck)
             .build());
  h.table.advance(us(10'000'000));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].close_reason, FlowCloseReason::kTcpReset);
  EXPECT_FALSE(h.records[0].handshake_completed);
}

TEST(FlowTable, IdleTimeoutExpiresUdpFlows) {
  FlowTableConfig cfg;
  cfg.udp_idle_timeout_us = 1'000'000;
  Harness h{cfg};
  h.feed(PacketBuilder{}.ts(us(0)).ip(kClient, kServer).udp(50000, 443).payload("x").build());
  EXPECT_EQ(h.table.active_flows(), 1u);
  h.table.advance(us(2'000'001));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].close_reason, FlowCloseReason::kIdleTimeout);
  EXPECT_EQ(h.records[0].proto, ew::core::TransportProto::kUdp);
}

TEST(FlowTable, ActivityDefersIdleExpiry) {
  FlowTableConfig cfg;
  cfg.udp_idle_timeout_us = 1'000'000;
  Harness h{cfg};
  for (int i = 0; i < 5; ++i) {
    h.feed(PacketBuilder{}
               .ts(us(i * 900'000))
               .ip(kClient, kServer)
               .udp(50000, 443)
               .payload("ping")
               .build());
  }
  EXPECT_TRUE(h.records.empty());  // never idle long enough
  h.table.advance(us(5 * 900'000 + 1'000'001));
  EXPECT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.packets, 5u);
}

TEST(FlowTable, BidirectionalPacketsMapToOneFlow) {
  Harness h;
  h.feed(PacketBuilder{}.ts(us(0)).ip(kClient, kServer).udp(1234, 443).payload("abc").build());
  h.feed(PacketBuilder{}.ts(us(10)).ip(kServer, kClient).udp(443, 1234).payload("defgh").build());
  EXPECT_EQ(h.table.active_flows(), 1u);
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.bytes, 3u);
  EXPECT_EQ(h.records[0].down.bytes, 5u);
  EXPECT_EQ(h.records[0].client_ip, kClient);  // direction normalized
}

TEST(FlowTable, SynAckFirstFlipsRoles) {
  // Probe starts mid-handshake: first packet seen is the server's SYN-ACK.
  Harness h;
  h.feed(PacketBuilder{}
             .ts(us(0))
             .ip(kServer, kClient)
             .tcp(443, 40000, 0, 1, TcpFlags::kSyn | TcpFlags::kAck)
             .build());
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].client_ip, kClient);
  EXPECT_EQ(h.records[0].server_port, 443);
  EXPECT_EQ(h.records[0].down.packets, 1u);
}

TEST(FlowTable, DpiRunsOnFirstClientPayloadOnly) {
  Harness h;
  h.feed(PacketBuilder{}
             .ts(us(0))
             .ip(kClient, kServer)
             .tcp(40000, 80, 1, 0, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(ew::dpi::build_http_request("first.com"))
             .build());
  h.feed(PacketBuilder{}
             .ts(us(10))
             .ip(kClient, kServer)
             .tcp(40000, 80, 500, 0, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(ew::dpi::build_http_request("second.com"))
             .build());
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].server_name, "first.com");
}

TEST(FlowTable, MaxFlowsForcesEviction) {
  FlowTableConfig cfg;
  cfg.max_flows = 10;
  Harness h{cfg};
  for (std::uint16_t i = 0; i < 50; ++i) {
    h.feed(PacketBuilder{}
               .ts(us(i))
               .ip(kClient, kServer)
               .udp(static_cast<std::uint16_t>(10000 + i), 443)
               .payload("x")
               .build());
  }
  EXPECT_LE(h.table.active_flows(), 10u);
  EXPECT_GT(h.table.counters().forced_evictions, 0u);
  EXPECT_EQ(h.records.size() + h.table.active_flows(), 50u);  // nothing lost
}

TEST(FlowTable, FlushExportsEverythingOnce) {
  Harness h;
  for (std::uint16_t i = 0; i < 7; ++i) {
    h.feed(PacketBuilder{}
               .ts(us(i))
               .ip(kClient, kServer)
               .udp(static_cast<std::uint16_t>(20000 + i), 443)
               .payload("y")
               .build());
  }
  h.table.flush();
  EXPECT_EQ(h.records.size(), 7u);
  EXPECT_EQ(h.table.active_flows(), 0u);
  for (const auto& r : h.records) EXPECT_EQ(r.close_reason, FlowCloseReason::kProbeFlush);
  h.table.flush();
  EXPECT_EQ(h.records.size(), 7u);  // idempotent
}

// Property: under random interleavings of many conversations, every packet
// is attributed, no flow leaks, and export count matches flow count.
TEST(FlowTable, RandomInterleavingNeverLeaks) {
  FlowTableConfig cfg;
  cfg.tcp_idle_timeout_us = 3'600'000'000;  // effectively no idle expiry
  Harness h{cfg};
  ew::core::Xoshiro256 rng{1234};

  std::vector<std::vector<ew::net::Frame>> convs;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    convs.push_back(tcp_conversation(static_cast<std::int64_t>(i) * 1000, 5'000,
                                     ew::dpi::build_http_request("bulk.example"), 400,
                                     static_cast<std::uint16_t>(41000 + i)));
  }
  // Round-robin merge with random advancement: preserves per-flow order,
  // interleaves flows randomly.
  std::vector<std::size_t> next(convs.size(), 0);
  std::uint64_t total_packets = 0;
  while (true) {
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < convs.size(); ++i) {
      if (next[i] < convs[i].size()) alive.push_back(i);
    }
    if (alive.empty()) break;
    const auto pick = alive[ew::core::uniform_below(rng, alive.size())];
    h.feed(convs[pick][next[pick]++]);
    ++total_packets;
  }
  h.table.advance(us(3'700'000'000));
  EXPECT_EQ(h.records.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(h.table.active_flows(), 0u);
  std::uint64_t counted = 0;
  for (const auto& r : h.records) counted += r.up.packets + r.down.packets;
  EXPECT_EQ(counted, total_packets);
  for (const auto& r : h.records) {
    EXPECT_TRUE(r.handshake_completed);
    EXPECT_EQ(r.close_reason, FlowCloseReason::kTcpTeardown);
    EXPECT_EQ(r.server_name, "bulk.example");
  }
}

TEST(FlowTable, SplitClientHelloIsReassembledForDpi) {
  // A ClientHello cut across two TCP segments must still yield the SNI —
  // the DPI stage buffers the client stream until the message parses.
  Harness h;
  const auto hello = ew::dpi::build_client_hello("www.netflix.com", {});
  const std::size_t cut = hello.size() / 2;
  std::vector<std::byte> part1(hello.begin(), hello.begin() + static_cast<long>(cut));
  std::vector<std::byte> part2(hello.begin() + static_cast<long>(cut), hello.end());

  h.feed(PacketBuilder{}
             .ts(us(0))
             .ip(kClient, kServer)
             .tcp(40000, 443, 1000, 0, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(std::move(part1))
             .build());
  h.feed(PacketBuilder{}
             .ts(us(100))
             .ip(kClient, kServer)
             .tcp(40000, 443, 1000 + static_cast<std::uint32_t>(cut), 0,
                  TcpFlags::kAck | TcpFlags::kPsh)
             .payload(std::move(part2))
             .build());
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].server_name, "www.netflix.com");
  EXPECT_EQ(h.records[0].l7, ew::dpi::L7Protocol::kTls);
}

TEST(FlowTable, DpiBufferGivesUpAtLimit) {
  FlowTableConfig cfg;
  cfg.dpi_buffer_limit = 64;
  Harness h{cfg};
  // A TLS record header promising a huge ClientHello that never completes:
  // the table must stop buffering at the limit and still export the flow.
  std::vector<std::byte> first =
      ew::core::to_bytes(std::string("\x16\x03\x01\x7f\xff\x01", 6));
  first.resize(40, std::byte{0x41});
  std::uint32_t seq = 1000;
  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> payload =
        i == 0 ? first : std::vector<std::byte>(40, std::byte{0x41});
    h.feed(PacketBuilder{}
               .ts(us(i * 100))
               .ip(kClient, kServer)
               .tcp(40000, 443, seq, 0, TcpFlags::kAck)
               .payload(std::move(payload))
               .build());
    seq += 40;
  }
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);  // flow exported despite inconclusive DPI
  EXPECT_EQ(h.records[0].l7, ew::dpi::L7Protocol::kTls);  // record framing detected
  EXPECT_TRUE(h.records[0].server_name.empty());
}

TEST(FlowTable, RetransmissionsCounted) {
  Harness h;
  auto data = [&](std::int64_t at, std::uint32_t seq) {
    h.feed(PacketBuilder{}
               .ts(us(at))
               .ip(kClient, kServer)
               .tcp(40000, 443, seq, 0, TcpFlags::kAck)
               .payload(std::vector<std::byte>(100, std::byte{0x42}))
               .build());
  };
  data(0, 1000);
  data(100, 1100);   // in order
  data(200, 1000);   // full retransmission
  data(300, 1100);   // another retransmission
  data(400, 1200);   // back in order
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.retransmits, 2u);
  EXPECT_EQ(h.records[0].up.out_of_order, 0u);
}

TEST(FlowTable, OutOfOrderCounted) {
  Harness h;
  auto data = [&](std::int64_t at, std::uint32_t seq) {
    h.feed(PacketBuilder{}
               .ts(us(at))
               .ip(kClient, kServer)
               .tcp(40000, 443, seq, 0, TcpFlags::kAck)
               .payload(std::vector<std::byte>(100, std::byte{0x42}))
               .build());
  };
  data(0, 1000);
  data(100, 1300);  // hole: 1100..1299 missing
  data(200, 1100);  // late fill (inside seen space -> counted retransmit)
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.out_of_order, 1u);
  EXPECT_EQ(h.records[0].up.retransmits, 1u);
}

TEST(FlowTable, CleanConversationHasNoAnomalies) {
  Harness h;
  auto frames = tcp_conversation(0, 10'000, ew::dpi::build_http_request("x.com"), 2000);
  for (const auto& f : frames) h.feed(f);
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].up.retransmits, 0u);
  EXPECT_EQ(h.records[0].up.out_of_order, 0u);
  EXPECT_EQ(h.records[0].down.retransmits, 0u);
  EXPECT_EQ(h.records[0].down.out_of_order, 0u);
}

TEST(FlowTable, NegotiatedAlpnOverridesOfferedAlpn) {
  // Client offers h2 + http/1.1, server selects http/1.1: the record must
  // say plain TLS, not HTTP/2.
  Harness h;
  const std::string offered[] = {"h2", "http/1.1"};
  h.feed(PacketBuilder{}
             .ts(us(0))
             .ip(kClient, kServer)
             .tcp(40000, 443, 1000, 500, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(ew::dpi::build_client_hello("www.example.com", offered))
             .build());
  h.feed(PacketBuilder{}
             .ts(us(100))
             .ip(kServer, kClient)
             .tcp(443, 40000, 500, 2000, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(ew::dpi::build_server_hello("http/1.1"))
             .build());
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].web, ew::dpi::WebProtocol::kTls);

  // And the other way: offered http/1.1-only label upgrades when the
  // server actually selects h2 (unusual but legal).
  Harness h2;
  const std::string offered2[] = {"http/1.1", "h2"};
  h2.feed(PacketBuilder{}
              .ts(us(0))
              .ip(kClient, kServer)
              .tcp(40001, 443, 1000, 500, TcpFlags::kAck | TcpFlags::kPsh)
              .payload(ew::dpi::build_client_hello("www.example.com", offered2))
              .build());
  h2.feed(PacketBuilder{}
              .ts(us(100))
              .ip(kServer, kClient)
              .tcp(443, 40001, 500, 2000, TcpFlags::kAck | TcpFlags::kPsh)
              .payload(ew::dpi::build_server_hello("h2"))
              .build());
  h2.table.flush();
  ASSERT_EQ(h2.records.size(), 1u);
  EXPECT_EQ(h2.records[0].web, ew::dpi::WebProtocol::kHttp2);
}

TEST(FlowTable, HttpTransactionFieldsCaptured) {
  Harness h;
  h.feed(PacketBuilder{}
             .ts(us(0))
             .ip(kClient, kServer)
             .tcp(40000, 80, 1000, 500, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(ew::dpi::build_http_request("cdn.example.org", "/v.mp4"))
             .build());
  h.feed(PacketBuilder{}
             .ts(us(100))
             .ip(kServer, kClient)
             .tcp(80, 40000, 500, 2000, TcpFlags::kAck | TcpFlags::kPsh)
             .payload(ew::dpi::build_http_response(206, "video/mp4", 1000))
             .build());
  h.table.flush();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].http_status, 206);
  EXPECT_EQ(h.records[0].content_type, "video/mp4");
  EXPECT_EQ(h.records[0].server_name, "cdn.example.org");
}

// ----------------------------------------------------------------- RTT

TEST(RttEstimator, SinglePacketExchange) {
  ew::flow::RttEstimator est;
  ew::flow::RttStats stats;
  est.on_client_segment(100, 200, us(1000));
  est.on_server_ack(200, us(26'000), stats);
  ASSERT_EQ(stats.samples, 1u);
  EXPECT_EQ(stats.min_us, 25'000);
}

TEST(RttEstimator, KarnRuleSkipsRetransmissions) {
  ew::flow::RttEstimator est;
  ew::flow::RttStats stats;
  est.on_client_segment(100, 200, us(0));
  est.on_client_segment(100, 200, us(50'000));  // retransmission
  est.on_server_ack(200, us(60'000), stats);
  EXPECT_EQ(stats.samples, 0u);  // ambiguous ACK produced no sample
}

TEST(RttEstimator, CumulativeAckSamplesAllCoveredSegments) {
  ew::flow::RttEstimator est;
  ew::flow::RttStats stats;
  est.on_client_segment(0, 1000, us(0));
  est.on_client_segment(1000, 2000, us(100));
  est.on_client_segment(2000, 3000, us(200));
  est.on_server_ack(3000, us(10'000), stats);
  EXPECT_EQ(stats.samples, 3u);
  EXPECT_EQ(stats.max_us, 10'000);
  EXPECT_EQ(stats.min_us, 9'800);
}

TEST(RttEstimator, PartialAckLeavesTailOutstanding) {
  ew::flow::RttEstimator est;
  ew::flow::RttStats stats;
  est.on_client_segment(0, 1000, us(0));
  est.on_client_segment(1000, 2000, us(10));
  est.on_server_ack(1000, us(5000), stats);
  EXPECT_EQ(stats.samples, 1u);
  EXPECT_EQ(est.outstanding(), 1u);
}

TEST(RttEstimator, SequenceWraparoundHandled) {
  ew::flow::RttEstimator est;
  ew::flow::RttStats stats;
  const std::uint32_t near_max = 0xFFFFFF00u;
  est.on_client_segment(near_max, near_max + 0x200, us(0));  // wraps past 0
  est.on_server_ack(0x100, us(7000), stats);                 // post-wrap ACK
  ASSERT_EQ(stats.samples, 1u);
  EXPECT_EQ(stats.min_us, 7000);
}

TEST(RttEstimator, OutstandingBounded) {
  ew::flow::RttEstimator est;
  for (std::uint32_t i = 0; i < 100; ++i) {
    est.on_client_segment(i * 1000, i * 1000 + 500, us(i));
  }
  EXPECT_LE(est.outstanding(), ew::flow::RttEstimator::kMaxOutstanding);
}

TEST(RttStats, MinAvgMaxBookkeeping) {
  ew::flow::RttStats stats;
  stats.add(10'000);
  stats.add(30'000);
  stats.add(20'000);
  EXPECT_EQ(stats.samples, 3u);
  EXPECT_EQ(stats.min_us, 10'000);
  EXPECT_EQ(stats.max_us, 30'000);
  EXPECT_NEAR(stats.avg_us, 20'000.0, 1.0);
}

TEST(FlowRecord, CsvRowHasAllColumns) {
  FlowRecord r;
  r.client_ip = kClient;
  r.server_ip = kServer;
  r.server_name = "web.whatsapp.com";
  const auto row = r.to_csv_row();
  // 28 columns -> 27 commas.
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), 27);
  EXPECT_NE(row.find("web.whatsapp.com"), std::string::npos);
}
