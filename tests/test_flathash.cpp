// core::FlatHashMap: randomized op-parity against std::unordered_map as
// the oracle (the container it replaced on the probe hot path), plus the
// open-addressing specifics the oracle cannot express: tombstone reuse,
// rehash under load-factor pressure, and heterogeneous string_view lookup.
#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"
#include "core/string_pool.hpp"
#include "core/types.hpp"

namespace ew = edgewatch;
using ew::core::FlatHashMap;

TEST(FlatHashMap, BasicInsertFindErase) {
  FlatHashMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), map.end());

  auto [it, inserted] = map.try_emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 1);
  EXPECT_EQ(it->second, "one");
  EXPECT_FALSE(map.try_emplace(1, "uno").second);  // no overwrite
  EXPECT_EQ(map.at(1), "one");

  map[2] = "two";
  map[1] = "ONE";  // operator[] does overwrite
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(1), "ONE");

  EXPECT_EQ(map.erase(3), 0u);
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.contains(1));
  EXPECT_TRUE(map.contains(2));
  EXPECT_THROW((void)map.at(1), std::out_of_range);
}

TEST(FlatHashMap, RandomizedOracleParity) {
  // Small key space so insert/find/erase all hit live keys, tombstones, and
  // re-inserted keys constantly; a few hundred thousand ops cross several
  // rehash boundaries.
  std::mt19937_64 rng{20260806};
  FlatHashMap<std::uint32_t, std::uint64_t> map;
  std::unordered_map<std::uint32_t, std::uint64_t> oracle;

  for (int op = 0; op < 300'000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng() % 4096);
    switch (rng() % 5) {
      case 0:
      case 1: {  // insert-or-assign
        const std::uint64_t v = rng();
        map[key] = v;
        oracle[key] = v;
        break;
      }
      case 2: {  // try_emplace (no overwrite)
        const std::uint64_t v = rng();
        map.try_emplace(key, v);
        oracle.try_emplace(key, v);
        break;
      }
      case 3: {  // erase
        EXPECT_EQ(map.erase(key), oracle.erase(key));
        break;
      }
      default: {  // lookup
        const auto it = map.find(key);
        const auto oit = oracle.find(key);
        ASSERT_EQ(it == map.end(), oit == oracle.end());
        if (oit != oracle.end()) { ASSERT_EQ(it->second, oit->second); }
        break;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }

  // Full-content sweep both ways.
  for (const auto& [k, v] : oracle) {
    const auto it = map.find(k);
    ASSERT_NE(it, map.end());
    ASSERT_EQ(it->second, v);
  }
  std::size_t seen = 0;
  for (const auto& [k, v] : map) {
    const auto oit = oracle.find(k);
    ASSERT_NE(oit, oracle.end());
    ASSERT_EQ(oit->second, v);
    ++seen;
  }
  EXPECT_EQ(seen, oracle.size());
}

TEST(FlatHashMap, FiveTupleKeysChurn) {
  // The exact workload of flow::FlowTable: five-tuple keys with insert on
  // first packet, lookup per packet, erase on export.
  std::mt19937_64 rng{7};
  auto random_tuple = [&rng] {
    ew::core::FiveTuple t;
    t.src_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(rng() % 512)};
    t.dst_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(rng() % 512)};
    t.src_port = static_cast<std::uint16_t>(rng() % 64);
    t.dst_port = static_cast<std::uint16_t>(rng() % 64);
    t.proto = (rng() % 2) ? ew::core::TransportProto::kTcp : ew::core::TransportProto::kUdp;
    return t;
  };

  FlatHashMap<ew::core::FiveTuple, std::uint64_t, ew::core::FiveTupleHash> map;
  std::unordered_map<ew::core::FiveTuple, std::uint64_t, ew::core::FiveTupleHash> oracle;
  for (int op = 0; op < 200'000; ++op) {
    const auto key = random_tuple();
    switch (rng() % 4) {
      case 0:
      case 1:
        ++map[key];
        ++oracle[key];
        break;
      case 2:
        ASSERT_EQ(map.erase(key), oracle.erase(key));
        break;
      default: {
        const auto it = map.find(key);
        const auto oit = oracle.find(key);
        ASSERT_EQ(it == map.end(), oit == oracle.end());
        if (oit != oracle.end()) { ASSERT_EQ(it->second, oit->second); }
      }
    }
  }
  ASSERT_EQ(map.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    const auto it = map.find(k);
    ASSERT_NE(it, map.end());
    ASSERT_EQ(it->second, v);
  }
}

TEST(FlatHashMap, TombstoneReuseKeepsCapacityBounded) {
  // Deleting and re-inserting the same keys forever must not grow the
  // table: tombstones are reused by later inserts (or purged by an
  // in-place rehash), so capacity stays at the steady-state size.
  FlatHashMap<int, int> map;
  for (int i = 0; i < 100; ++i) map[i] = i;
  const std::size_t cap = map.capacity();
  for (int round = 0; round < 10'000; ++round) {
    const int k = round % 100;
    ASSERT_EQ(map.erase(k), 1u);
    map[k] = -k;
  }
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ(map.capacity(), cap);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(map.at(i), -i);
}

TEST(FlatHashMap, RehashUnderLoadPressure) {
  // Fill past several growth boundaries and verify every element survives
  // each rehash; then clear and refill to check the table is reusable.
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    map[i * 2654435761u] = i;
    ASSERT_EQ(map.size(), i + 1);
  }
  EXPECT_GE(map.capacity(), map.size());
  EXPECT_LE(map.size(), map.capacity() - map.capacity() / 8);  // ≤ 7/8 load
  for (std::uint64_t i = 0; i < 10'000; ++i) ASSERT_EQ(map.at(i * 2654435761u), i);

  map.clear();
  EXPECT_TRUE(map.empty());
  map[42] = 7;
  EXPECT_EQ(map.at(42), 7u);
}

TEST(FlatHashMap, ReserveAvoidsRehash) {
  FlatHashMap<int, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  for (int i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatHashMap, HeterogeneousStringViewLookup) {
  FlatHashMap<std::string, int, ew::core::StringHash> map;
  map.try_emplace("www.facebook.com", 1);
  map.try_emplace("netflix.com", 2);

  // find/contains/at with a string_view: no std::string temporary.
  const std::string_view probe{"netflix.com"};
  const auto it = map.find(probe);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 2);
  EXPECT_TRUE(map.contains(std::string_view{"www.facebook.com"}));
  EXPECT_FALSE(map.contains(std::string_view{"example.org"}));
  EXPECT_EQ(map.at(probe), 2);

  // try_emplace with a string_view key constructs the std::string only on
  // actual insertion.
  auto [it2, inserted] = map.try_emplace(std::string_view{"twitter.com"}, 3);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.at(std::string_view{"twitter.com"}), 3);
}

TEST(FlatHashMap, IterationOrderIndependentMerge) {
  // Merging two maps must give identical contents regardless of which
  // iteration order the inputs present — the parallel day-aggregate merge
  // depends on this.
  std::mt19937_64 rng{99};
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  for (int i = 0; i < 2000; ++i) {
    items.emplace_back(static_cast<std::uint32_t>(rng() % 1500), rng() % 1000);
  }

  auto merge_all = [&](bool shuffled) {
    auto copy = items;
    if (shuffled) std::shuffle(copy.begin(), copy.end(), rng);
    FlatHashMap<std::uint32_t, std::uint64_t> a, b;
    for (std::size_t i = 0; i < copy.size(); ++i) {
      (i % 2 ? a : b)[copy[i].first] += copy[i].second;
    }
    for (const auto& [k, v] : b) a[k] += v;
    return a;
  };

  // Single-map accumulation is the ground truth.
  FlatHashMap<std::uint32_t, std::uint64_t> truth;
  for (const auto& [k, v] : items) truth[k] += v;

  const auto merged = merge_all(false);
  EXPECT_EQ(merged, truth);
  // Shuffling redistributes items across the two partial maps; the merged
  // sum per key is unchanged.
  const auto merged_shuffled = merge_all(true);
  EXPECT_EQ(merged_shuffled, truth);
}

TEST(FlatHashMap, EraseViaIteratorDuringScan) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 500; ++i) map[i] = i;
  // Erase all odd values through the returned-next-iterator protocol.
  for (auto it = map.begin(); it != map.end();) {
    if (it->first % 2 == 1) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(map.size(), 250u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(map.contains(i), i % 2 == 0);
}

TEST(FlatHashMap, CopyAndMoveSemantics) {
  FlatHashMap<std::string, int, ew::core::StringHash> map;
  for (int i = 0; i < 100; ++i) map[std::to_string(i)] = i;

  FlatHashMap<std::string, int, ew::core::StringHash> copy{map};
  EXPECT_EQ(copy, map);
  copy["extra"] = 1;
  EXPECT_EQ(map.size(), 100u);  // deep copy

  FlatHashMap<std::string, int, ew::core::StringHash> moved{std::move(copy)};
  EXPECT_EQ(moved.size(), 101u);
  EXPECT_EQ(moved.at("extra"), 1);

  map = moved;  // copy-assign
  EXPECT_EQ(map, moved);
  FlatHashMap<std::string, int, ew::core::StringHash> target;
  target = std::move(moved);  // move-assign
  EXPECT_EQ(target.size(), 101u);
}

TEST(StringPool, InternDeduplicatesAndStaysStable) {
  ew::core::StringPool pool;
  const auto a = pool.intern("www.youtube.com");
  const auto b = pool.intern("www.youtube.com");
  EXPECT_EQ(a.data(), b.data());  // one stored copy
  EXPECT_EQ(pool.size(), 1u);

  // Grow the pool far past several chunk allocations; early views must
  // still read correctly (append-only arena, no reallocation of old data).
  std::vector<std::string_view> views;
  for (int i = 0; i < 50'000; ++i) {
    views.push_back(pool.intern("host-" + std::to_string(i) + ".example.com"));
  }
  EXPECT_EQ(a, "www.youtube.com");
  EXPECT_EQ(views.front(), "host-0.example.com");
  EXPECT_EQ(views.back(), "host-49999.example.com");
  EXPECT_EQ(pool.size(), 50'001u);

  // Empty strings intern to a stable non-null view.
  const auto empty = pool.intern("");
  EXPECT_TRUE(empty.empty());
  EXPECT_NE(empty.data(), nullptr);

  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.bytes(), 0u);
  const auto c = pool.intern("fresh");
  EXPECT_EQ(c, "fresh");
}
