// The batch execution core's golden identities: every consumer that moved
// from the row callback to RecordBatch must be *indistinguishable* from the
// row path — same aggregates bit for bit (fp accumulation order included),
// same rollup bytes, same query answers, same delivery counts on damaged
// days — across all three lake formats (v1 staged, v2 staged, v3 native
// columnar with dict-code pass-through).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analytics/parallel.hpp"
#include "core/hash.hpp"
#include "core/thread_pool.hpp"
#include "exec/record_batch.hpp"
#include "query/engine.hpp"
#include "query/rollup.hpp"
#include "query/store.hpp"
#include "storage/codec.hpp"
#include "storage/columnar.hpp"
#include "storage/daily_writer.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;
using ew::core::CivilDate;
using ew::core::ThreadPool;
using ew::flow::FlowRecord;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::path(::testing::TempDir()) /
           ("ew_exec_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void spew(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

std::string encode_stream(const std::vector<FlowRecord>& records) {
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  return std::string(reinterpret_cast<const char*>(w.view().data()), w.size());
}

std::vector<FlowRecord> paper_day(CivilDate day) {
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7, 0.2)};
  return gen.day_records(day);
}

/// Hand-rolled format-v1 writer (pre-seal: per block u32le len | u32le
/// truncated-fnv1a64(uncompressed) | compressed body).
void write_v1_file(const fs::path& path, std::span<const FlowRecord> records,
                   std::size_t block_records = 512) {
  ew::core::ByteWriter out;
  out.string("EWLK");
  out.u8(1);
  for (std::size_t first = 0; first < records.size(); first += block_records) {
    const std::size_t n = std::min(block_records, records.size() - first);
    ew::core::ByteWriter block;
    for (std::size_t i = 0; i < n; ++i) ew::storage::encode_record(records[first + i], block);
    const auto compressed = ew::storage::compress_block(block.view());
    out.u32le(static_cast<std::uint32_t>(compressed.size()));
    out.u32le(static_cast<std::uint32_t>(ew::core::fnv1a64(block.view())));
    out.bytes(compressed);
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(out.view().data()),
          static_cast<std::streamsize>(out.size()));
}

/// Overwrite bytes inside the first block's body of a v3 day file and
/// recompute the frame CRC (simulates an encoder lie, not media damage).
void patch_first_body(const fs::path& path, std::size_t offset,
                      std::span<const unsigned char> replacement) {
  auto contents = slurp(path);
  const std::size_t frame = 5;  // "EWLK" + version byte
  ASSERT_GE(contents.size(), frame + 16);
  const auto u8at = [&](std::size_t i) { return static_cast<unsigned char>(contents[i]); };
  const std::size_t body_len = u8at(frame) | (u8at(frame + 1) << 8) | (u8at(frame + 2) << 16) |
                               (static_cast<std::size_t>(u8at(frame + 3)) << 24);
  const std::size_t body = frame + 16;
  ASSERT_LE(offset + replacement.size(), body_len);
  for (std::size_t i = 0; i < replacement.size(); ++i) {
    contents[body + offset + i] = static_cast<char>(replacement[i]);
  }
  const auto* bytes = reinterpret_cast<const std::byte*>(contents.data());
  std::uint32_t crc = ew::core::crc32c({bytes + frame, 12});
  crc = ew::core::crc32c({bytes + body, body_len}, crc);
  for (int i = 0; i < 4; ++i) {
    contents[frame + 12 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  spew(path, contents);
}

/// Exhaustive (and exact, fp included) aggregate comparison: the batch path
/// promises *bit-identical* accumulation, not approximately-equal figures.
void expect_aggregates_equal(const ew::analytics::DayAggregate& a,
                             const ew::analytics::DayAggregate& b) {
  EXPECT_EQ(a.date.to_string(), b.date.to_string());
  EXPECT_EQ(a.web_bytes, b.web_bytes);
  EXPECT_EQ(a.downlink_bins, b.downlink_bins);  // exact doubles: same add order
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    EXPECT_EQ(a.rtt_min_ms[s], b.rtt_min_ms[s]) << "service " << s;  // exact order
    EXPECT_EQ(a.health[s].packets, b.health[s].packets) << "service " << s;
    EXPECT_EQ(a.health[s].retransmits, b.health[s].retransmits) << "service " << s;
    EXPECT_EQ(a.health[s].out_of_order, b.health[s].out_of_order) << "service " << s;
  }
  ASSERT_EQ(a.subscribers.size(), b.subscribers.size());
  for (const auto& [ip, sub] : a.subscribers) {
    const auto it = b.subscribers.find(ip);
    ASSERT_NE(it, b.subscribers.end());
    EXPECT_EQ(sub.access, it->second.access);
    EXPECT_EQ(sub.flows, it->second.flows);
    EXPECT_EQ(sub.bytes_up, it->second.bytes_up);
    EXPECT_EQ(sub.bytes_down, it->second.bytes_down);
    for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
      EXPECT_EQ(sub.per_service[s].flows, it->second.per_service[s].flows);
      EXPECT_EQ(sub.per_service[s].bytes_up, it->second.per_service[s].bytes_up);
      EXPECT_EQ(sub.per_service[s].bytes_down, it->second.per_service[s].bytes_down);
    }
  }
  ASSERT_EQ(a.server_ips.size(), b.server_ips.size());
  for (const auto& [ip, stats] : a.server_ips) {
    const auto it = b.server_ips.find(ip);
    ASSERT_NE(it, b.server_ips.end());
    EXPECT_EQ(stats.service_mask, it->second.service_mask);
    EXPECT_EQ(stats.bytes, it->second.bytes);
  }
  EXPECT_EQ(a.domain_bytes, b.domain_bytes);
  EXPECT_EQ(a.unclassified_domain_bytes, b.unclassified_domain_bytes);
}

/// The row-path oracle: same lake, same projection, but every record goes
/// through DayAggregator::add via the row-callback shim.
ew::analytics::DayAggregate row_oracle(const ew::storage::DataLake& lake, CivilDate day,
                                       ew::storage::ScanResult* scan_out = nullptr) {
  ew::analytics::DayAggregator agg(day);
  const auto pred =
      ew::storage::ScanPredicate::project(ew::analytics::kDayAggregateScanFields);
  const auto scan = lake.scan_day(day, pred, [&](const FlowRecord& r) { agg.add(r); });
  if (scan_out != nullptr) *scan_out = scan;
  return std::move(agg).take();
}

}  // namespace

// Round-trip through BatchStaging + the batch→row shim reproduces the
// original records byte for byte — the direct oracle for both halves of the
// v1/v2 batch path.
TEST(ExecBatch, StagingRoundTripsRecordsByteIdentical) {
  const CivilDate day{2016, 3, 3};
  auto records = paper_day(day);
  records.resize(std::min<std::size_t>(records.size(), 5'000));
  ASSERT_FALSE(records.empty());

  ew::exec::BatchStaging staging;
  for (const auto& r : records) staging.add(r);
  const ew::exec::RecordBatch batch = staging.finish();
  EXPECT_EQ(batch.rows, records.size());
  EXPECT_EQ(batch.delivered_rows(), records.size());

  std::vector<FlowRecord> got;
  FlowRecord rec;
  std::uint64_t delivered = 0;
  auto sink = [&](const FlowRecord& r) { got.push_back(r); };
  ew::exec::materialize_rows(batch, rec, ew::core::FunctionRef<void(const FlowRecord&)>(sink),
                             delivered);
  EXPECT_EQ(delivered, records.size());
  // ingest_seq is not stored in the lake; the shim zeroes it, so mirror
  // that on the expectation side before the byte compare.
  auto expected = records;
  for (auto& r : expected) r.ingest_seq = 0;
  EXPECT_EQ(encode_stream(got), encode_stream(expected));
}

// The headline identity: batch-fed aggregation equals row-fed aggregation —
// bit for bit — on the same day stored in all three formats, and the
// figure-feeding rollups built from them are byte-identical.
TEST(ExecBatch, BatchAggregateMatchesRowAcrossV1V2V3) {
  const CivilDate day{2016, 4, 12};
  const auto records = paper_day(day);

  TempDir v1_dir, v2_dir, v3_dir;
  ew::storage::DataLake v1(v1_dir.path);  // the lake creates its directory
  write_v1_file(v1_dir.path / ew::storage::DataLake::day_filename(day), records);
  ew::storage::DataLake v2(v2_dir.path);
  v2.set_write_format(ew::storage::LakeFormat::kV2);
  ASSERT_TRUE(v2.append(day, records).has_value());
  ew::storage::DataLake v3(v3_dir.path);
  ASSERT_TRUE(v3.append(day, records).has_value());
  ASSERT_EQ(v3.fsck_day(day).version, 3);

  for (const auto* lake : {&v1, &v2, &v3}) {
    ew::storage::ScanResult row_scan;
    const auto want = row_oracle(*lake, day, &row_scan);
    const auto got = ew::analytics::aggregate_day(*lake, day);  // batch path
    ASSERT_TRUE(got.scan.ok());
    EXPECT_EQ(got.scan.records_delivered, row_scan.records_delivered);
    EXPECT_EQ(got.scan.records_delivered, records.size());
    expect_aggregates_equal(want, got.aggregate);

    for (std::size_t d = 0; d < ew::query::kDimensionCount; ++d) {
      const auto dim = static_cast<ew::query::Dimension>(d);
      EXPECT_EQ(ew::query::encode_rollup(ew::query::build_day_rollup(want, dim)),
                ew::query::encode_rollup(ew::query::build_day_rollup(got.aggregate, dim)))
          << "dimension " << d;
    }
  }
}

// Dict-code pass-through oracle: under the kDayAggregate projection a v3
// batch carries (name_idx, name_dict) instead of per-row strings. Resolving
// each row through the dictionary must reproduce exactly the server_name
// sequence the row path emits — and the dictionary must actually be shared
// (fewer entries than rows), or pass-through bought nothing.
TEST(ExecBatch, ProjectionPassesDictCodesThrough) {
  const CivilDate day{2016, 5, 20};
  const auto records = paper_day(day);
  TempDir dir;
  ew::storage::DataLake lake(dir.path);
  ASSERT_TRUE(lake.append(day, records).has_value());
  ASSERT_EQ(lake.fsck_day(day).version, 3);

  const auto pred =
      ew::storage::ScanPredicate::project(ew::exec::scan_fields::kDayAggregate);

  std::vector<std::string> row_names;
  (void)lake.scan_day(day, pred,
                      [&](const FlowRecord& r) { row_names.push_back(r.server_name); });

  std::vector<std::string> batch_names;
  std::size_t batches = 0, dict_entries = 0;
  const auto scan = lake.scan_day_batches(day, pred, [&](const ew::exec::RecordBatch& b) {
    ++batches;
    EXPECT_EQ(b.fields, ew::exec::scan_fields::kDayAggregate);
    ASSERT_FALSE(b.name_idx.empty());
    ASSERT_FALSE(b.name_dict.empty());
    // Unprojected columns stay empty, never stale.
    EXPECT_TRUE(b.ct_idx.empty());
    EXPECT_TRUE(b.cport.empty());
    EXPECT_TRUE(b.http_status.empty());
    dict_entries += b.name_dict.size();
    b.for_each_row([&](std::size_t i) {
      ASSERT_LT(b.name_idx[i], b.name_dict.size());
      batch_names.emplace_back(b.name_dict[b.name_idx[i]]);
    });
  });
  ASSERT_TRUE(scan.ok());
  EXPECT_GT(batches, 1u);
  EXPECT_EQ(batch_names, row_names);
  EXPECT_LT(dict_entries, batch_names.size());  // codes are shared across rows
}

// A lying zone map (encoder bug behind a valid CRC) must behave identically
// on the batch path: every record still delivered, day flagged kCorrupt.
TEST(ExecBatch, ZoneMapLieFlagsButDeliversThroughBatches) {
  const CivilDate day{2016, 6, 1};
  const auto records = paper_day(day);
  TempDir dir;
  ew::storage::DataLake lake(dir.path);
  ASSERT_TRUE(lake.append(day, records).has_value());
  // Zero the first block's zone-map service bitmap (body offset 2 + 16):
  // the map now claims "no service present" while rows disagree.
  const unsigned char zeros[4] = {0, 0, 0, 0};
  patch_first_body(dir.path / ew::storage::DataLake::day_filename(day), 2 + 16, zeros);

  ew::storage::ScanResult row_scan;
  const auto want = row_oracle(lake, day, &row_scan);
  EXPECT_EQ(row_scan.errc, ew::core::Errc::kCorrupt);
  EXPECT_EQ(row_scan.records_delivered, records.size());

  const auto got = ew::analytics::aggregate_day(lake, day);
  EXPECT_EQ(got.scan.errc, ew::core::Errc::kCorrupt);
  EXPECT_EQ(got.scan.records_delivered, records.size());
  expect_aggregates_equal(want, got.aggregate);
}

// A torn row-format day (truncated mid-frame) delivers the valid prefix on
// both paths: the staging batch is flushed before the torn marker, so batch
// consumers see exactly the records the row path salvages.
TEST(ExecBatch, TornRowFormatDayDeliversSamePrefixAsBatches) {
  const CivilDate day{2016, 7, 9};
  const auto records = paper_day(day);
  TempDir dir;
  ew::storage::DataLake lake(dir.path);
  lake.set_write_format(ew::storage::LakeFormat::kV2);
  ASSERT_TRUE(lake.append(day, records).has_value());

  const auto path = dir.path / ew::storage::DataLake::day_filename(day);
  auto contents = slurp(path);
  ASSERT_GT(contents.size(), 1000u);
  contents.resize(contents.size() - contents.size() / 3);  // tear the tail off
  spew(path, contents);

  ew::storage::ScanResult row_scan;
  const auto want = row_oracle(lake, day, &row_scan);
  ASSERT_GT(row_scan.records_delivered, 0u);
  ASSERT_LT(row_scan.records_delivered, records.size());

  const auto got = ew::analytics::aggregate_day(lake, day);
  EXPECT_EQ(got.scan.records_delivered, row_scan.records_delivered);
  EXPECT_EQ(got.scan.errc, row_scan.errc);
  expect_aggregates_equal(want, got.aggregate);
}

// The query engine's raw fallback now scans batches with a narrowed
// projection; over a *row-format* lake (the staging path) it must still be
// indistinguishable from rollup-answered days.
TEST(ExecBatch, QueryRawFallbackOverRowFormatLakeMatchesRollups) {
  const CivilDate day1{2016, 8, 1}, day2{2016, 8, 2};
  TempDir lake_dir, full_dir, partial_dir;
  ew::storage::DataLake lake(lake_dir.path);
  lake.set_write_format(ew::storage::LakeFormat::kV2);
  ASSERT_TRUE(lake.append(day1, paper_day(day1)).has_value());
  ASSERT_TRUE(lake.append(day2, paper_day(day2)).has_value());

  ThreadPool pool(4);
  ew::query::RollupStore full(full_dir.path, lake);
  ASSERT_TRUE(full.build(pool).errors.empty());
  ew::query::RollupStore partial(partial_dir.path, lake);
  const std::vector<CivilDate> only_day1 = {day1};
  ASSERT_TRUE(partial.build(only_day1, pool).errors.empty());

  for (const auto metric : {ew::query::Metric::kBytes, ew::query::Metric::kFlows}) {
    for (const auto dim : {ew::query::Dimension::kService, ew::query::Dimension::kProtocol}) {
      ew::query::QuerySpec spec;
      spec.metric = metric;
      spec.dimension = dim;
      spec.from = day1;
      spec.to = day2;
      spec.raw_fallback = true;
      const auto want = ew::query::run_query(full, spec);
      const auto got = ew::query::run_query(partial, spec);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.days_scanned_raw, 1u);
      ASSERT_EQ(got.rows.size(), want.rows.size());
      for (std::size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].key, want.rows[i].key);
        EXPECT_EQ(got.rows[i].value, want.rows[i].value);
      }
    }
  }
}

// The writer's one-entry MRU day cache is pure mechanism: interleaved days,
// mid-streak flushes (which erase the cached bucket), and retries must all
// land every record in its own day.
TEST(ExecWriter, MruDayCacheIsTransparentAcrossInterleavedDays) {
  const CivilDate days[] = {{2016, 9, 1}, {2016, 9, 2}, {2016, 9, 3}};
  TempDir dir;
  ew::storage::DataLake lake(dir.path);
  ew::storage::DailyLakeWriter writer(lake, /*buffer_records=*/64);

  std::size_t per_day[3] = {0, 0, 0};
  // Long same-day streaks with day switches, crossing the flush threshold
  // mid-streak so the MRU bucket is erased underneath a continuing streak.
  for (std::size_t round = 0; round < 5; ++round) {
    for (std::size_t d = 0; d < 3; ++d) {
      for (std::size_t i = 0; i < 100; ++i) {
        FlowRecord r;
        r.first_packet = ew::core::Timestamp::from_date_time(days[d], 12, 0, 0);
        r.last_packet = r.first_packet + 1'000'000;
        r.client_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(round * 1000 + i)};
        r.up.bytes = round + 1;
        writer.add(std::move(r));
        ++per_day[d];
      }
    }
  }
  ASSERT_TRUE(writer.flush_all());
  EXPECT_EQ(writer.buffered(), 0u);
  EXPECT_EQ(writer.records_written(), per_day[0] + per_day[1] + per_day[2]);
  for (std::size_t d = 0; d < 3; ++d) {
    const auto got = lake.read_day(days[d]);
    EXPECT_EQ(got.size(), per_day[d]) << "day " << d;
    for (const auto& r : got) EXPECT_EQ(r.first_packet.date(), days[d]);
    EXPECT_TRUE(lake.fsck_day(days[d]).healthy());
  }
}
