// Tests for core value types, byte cursors, time, hashing, RNG and stats.
#include <gtest/gtest.h>

#include <set>

#include "core/bytes.hpp"
#include "core/hash.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/time.hpp"
#include "core/types.hpp"

namespace ew = edgewatch::core;

// ---------------------------------------------------------------- IPv4

TEST(IPv4Address, RoundTripsDottedQuad) {
  const ew::IPv4Address a{130, 192, 181, 193};
  EXPECT_EQ(a.to_string(), "130.192.181.193");
  const auto parsed = ew::IPv4Address::parse("130.192.181.193");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(IPv4Address, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3",
                          "1.2.3.4 ", " 1.2.3.4", "01.2.3.4567", "-1.2.3.4"}) {
    EXPECT_FALSE(ew::IPv4Address::parse(bad).has_value()) << bad;
  }
}

TEST(IPv4Address, OctetsAreBigEndianOrdered) {
  const ew::IPv4Address a{10, 20, 30, 40};
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(3), 40);
  EXPECT_EQ(a.value(), 0x0A141E28u);
}

TEST(IPv4Prefix, ContainsMatchesMask) {
  const auto p = ew::IPv4Prefix::parse("157.240.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(ew::IPv4Address{157, 240, 12, 1}));
  EXPECT_FALSE(p->contains(ew::IPv4Address{157, 241, 0, 0}));
  EXPECT_EQ(p->size(), 65536u);
}

TEST(IPv4Prefix, ZeroLengthContainsEverything) {
  const ew::IPv4Prefix any{ew::IPv4Address{}, 0};
  EXPECT_TRUE(any.contains(ew::IPv4Address{255, 255, 255, 255}));
  EXPECT_TRUE(any.contains(ew::IPv4Address{}));
}

TEST(IPv4Prefix, ParseRejectsHostBitsAndBadLength) {
  EXPECT_FALSE(ew::IPv4Prefix::parse("10.0.0.1/8").has_value());
  EXPECT_FALSE(ew::IPv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(ew::IPv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_TRUE(ew::IPv4Prefix::parse("10.0.0.0/8").has_value());
  EXPECT_TRUE(ew::IPv4Prefix::parse("10.1.2.3/32").has_value());
}

TEST(IPv4Prefix, ConstructorClearsHostBits) {
  const ew::IPv4Prefix p{ew::IPv4Address{10, 1, 2, 3}, 8};
  EXPECT_EQ(p.base(), (ew::IPv4Address{10, 0, 0, 0}));
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const ew::FiveTuple t{ew::IPv4Address{1, 1, 1, 1}, ew::IPv4Address{2, 2, 2, 2}, 1234, 443,
                        ew::TransportProto::kTcp};
  const auto r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, HashDiffersForDifferentFlows) {
  ew::FiveTupleHash h;
  const ew::FiveTuple a{ew::IPv4Address{1, 1, 1, 1}, ew::IPv4Address{2, 2, 2, 2}, 1234, 443,
                        ew::TransportProto::kTcp};
  ew::FiveTuple b = a;
  b.src_port = 1235;
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(a));
}

// ---------------------------------------------------------------- bytes

TEST(ByteReader, ReadsBigEndianFields) {
  const auto buf = ew::to_bytes(std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8));
  ew::ByteReader r{buf};
  EXPECT_EQ(r.u16(), 0x0102u);
  EXPECT_EQ(r.u24(), 0x030405u);
  EXPECT_EQ(r.u8(), 0x06u);
  EXPECT_EQ(r.u16(), 0x0708u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunMarksFailureAndReturnsZero) {
  const auto buf = ew::to_bytes("ab");
  ew::ByteReader r{buf};
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays failed
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, LittleEndianVariants) {
  const auto buf = ew::to_bytes(std::string("\x78\x56\x34\x12", 4));
  ew::ByteReader r{buf};
  EXPECT_EQ(r.u32le(), 0x12345678u);
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ew::ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  w.string("host");
  ew::ByteReader r{w.view()};
  EXPECT_EQ(r.u8(), 0xABu);
  EXPECT_EQ(r.u16(), 0x1234u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.string(4), "host");
  EXPECT_TRUE(r.ok());
}

TEST(ByteWriter, PatchU16OverwritesInPlace) {
  ew::ByteWriter w;
  w.u16(0);
  w.u16(0xBEEF);
  w.patch_u16(0, 0xCAFE);
  ew::ByteReader r{w.view()};
  EXPECT_EQ(r.u16(), 0xCAFEu);
  EXPECT_EQ(r.u16(), 0xBEEFu);
}

TEST(ByteReader, SeekSupportsRandomAccess) {
  const auto buf = ew::to_bytes("abcdef");
  ew::ByteReader r{buf};
  r.seek(4);
  EXPECT_EQ(r.string(2), "ef");
  r.seek(0);
  EXPECT_EQ(r.string(1), "a");
  r.seek(99);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------- time

TEST(CivilDate, KnownEpochConversions) {
  EXPECT_EQ(ew::days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(ew::days_from_civil({2013, 3, 1}), 15765);
  const auto d = ew::civil_from_days(15765);
  EXPECT_EQ(d, (ew::CivilDate{2013, 3, 1}));
}

TEST(CivilDate, RoundTripsAcrossStudyPeriod) {
  // Every day of the paper's 2013-2017 window round-trips.
  const auto start = ew::days_from_civil({2013, 1, 1});
  const auto end = ew::days_from_civil({2018, 1, 1});
  for (auto z = start; z < end; ++z) {
    EXPECT_EQ(ew::days_from_civil(ew::civil_from_days(z)), z);
  }
}

TEST(CivilDate, ParseValidatesCalendar) {
  EXPECT_TRUE(ew::CivilDate::parse("2016-02-29").has_value());   // leap year
  EXPECT_FALSE(ew::CivilDate::parse("2017-02-29").has_value());  // not a leap year
  EXPECT_FALSE(ew::CivilDate::parse("2017-13-01").has_value());
  EXPECT_FALSE(ew::CivilDate::parse("2017-00-10").has_value());
  EXPECT_FALSE(ew::CivilDate::parse("17-01-01").has_value());
  const auto d = ew::CivilDate::parse("2014-04-15");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->to_string(), "2014-04-15");
}

TEST(Weekday, KnownAnchors) {
  EXPECT_EQ(ew::weekday_from_days(ew::days_from_civil({1970, 1, 1})), 4);   // Thursday
  EXPECT_EQ(ew::weekday_from_days(ew::days_from_civil({2014, 12, 25})), 4); // Thursday
  EXPECT_EQ(ew::weekday_from_days(ew::days_from_civil({2017, 1, 1})), 7);   // Sunday
}

TEST(Timestamp, DayAndHourExtraction) {
  const auto t = ew::Timestamp::from_date_time({2014, 4, 15}, 22, 30, 15);
  EXPECT_EQ(t.date(), (ew::CivilDate{2014, 4, 15}));
  EXPECT_EQ(t.hour(), 22);
  EXPECT_EQ(t.minute_of_day(), 22 * 60 + 30);
  EXPECT_EQ(t.to_string(), "2014-04-15 22:30:15.000000");
}

TEST(Timestamp, PreEpochDayIndexFloors) {
  const ew::Timestamp t{-1};  // one microsecond before the epoch
  EXPECT_EQ(t.day_index(), -1);
  EXPECT_EQ(t.date(), (ew::CivilDate{1969, 12, 31}));
}

TEST(MonthIndex, ArithmeticAndRendering) {
  const ew::MonthIndex m{2013, 3};
  EXPECT_EQ((m + 54).to_string(), "2017-09");
  EXPECT_EQ(ew::MonthIndex(2017, 9) - m, 54);
  EXPECT_EQ(m.first_day(), (ew::CivilDate{2013, 3, 1}));
  EXPECT_EQ(ew::MonthIndex(ew::CivilDate{2014, 12, 25}).to_string(), "2014-12");
}

TEST(DaysInMonth, HandlesLeapYears) {
  EXPECT_EQ(ew::days_in_month(2016, 2), 29);
  EXPECT_EQ(ew::days_in_month(2100, 2), 28);
  EXPECT_EQ(ew::days_in_month(2000, 2), 29);
  EXPECT_EQ(ew::days_in_month(2017, 12), 31);
}

// ---------------------------------------------------------------- hash

TEST(SipHash, MatchesReferenceVector) {
  // Reference test vector from the SipHash paper: key 000102..0f,
  // message 00 01 02 .. 3e (63 bytes) -- expected full vector table; we
  // check the canonical single value for a 15-byte message.
  ew::SipKey key{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
  std::vector<std::byte> msg;
  for (int i = 0; i < 15; ++i) msg.push_back(static_cast<std::byte>(i));
  EXPECT_EQ(ew::siphash24(key, msg), 0xa129ca6149be45e5ull);
}

TEST(SipHash, EmptyMessageReference) {
  ew::SipKey key{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
  EXPECT_EQ(ew::siphash24(key, std::span<const std::byte>{}), 0x726fdb47dd0e0e31ull);
}

TEST(SipHash, KeyChangesOutput) {
  const auto a = ew::siphash24({1, 2}, "facebook.com");
  const auto b = ew::siphash24({1, 3}, "facebook.com");
  EXPECT_NE(a, b);
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(ew::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(ew::fnv1a64("netflix.com"), ew::fnv1a64("nflxvideo.net"));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  ew::Xoshiro256 a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, Mix64IsOrderSensitive) {
  EXPECT_NE(ew::mix64(1, 2, 3), ew::mix64(3, 2, 1));
  EXPECT_EQ(ew::mix64(7, 8, 9), ew::mix64(7, 8, 9));
}

TEST(Rng, Uniform01InRange) {
  ew::Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = ew::uniform01(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBelowCoversRange) {
  ew::Xoshiro256 rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = ew::uniform_below(rng, 10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  ew::Xoshiro256 rng{11};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += ew::poisson(rng, 5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  ew::Xoshiro256 rng{11};
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += ew::poisson(rng, 200.0);
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, ParetoBoundedStaysInBounds) {
  ew::Xoshiro256 rng{13};
  for (int i = 0; i < 10000; ++i) {
    const double v = ew::pareto_bounded(rng, 1.2, 10.0, 1e6);
    ASSERT_GE(v, 10.0 * 0.999);
    ASSERT_LE(v, 1e6 * 1.001);
  }
}

TEST(Rng, LognormalMedianMatchesMu) {
  ew::Xoshiro256 rng{17};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(ew::lognormal(rng, std::log(100.0), 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 100.0, 3.0);
}

TEST(Rng, WeightedPickRespectsWeights) {
  ew::Xoshiro256 rng{19};
  const double w[] = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[ew::weighted_pick(rng, w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, ChanceExtremes) {
  ew::Xoshiro256 rng{23};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ew::chance(rng, 0.0));
    EXPECT_TRUE(ew::chance(rng, 1.0));
  }
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MomentsMatchClosedForm) {
  ew::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  ew::RunningStats a, b, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(EmpiricalDistribution, CdfAndQuantiles) {
  ew::EmpiricalDistribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.cdf(50), 0.5);
  EXPECT_DOUBLE_EQ(d.ccdf(90), 0.1);
  EXPECT_NEAR(d.median(), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
}

TEST(EmpiricalDistribution, CcdfIsMonotoneNonIncreasing) {
  ew::Xoshiro256 rng{29};
  ew::EmpiricalDistribution d;
  for (int i = 0; i < 1000; ++i) d.add(ew::lognormal(rng, 3.0, 1.5));
  const auto grid = ew::log_grid(0.1, 1e5, 50);
  const auto c = d.ccdf_at(grid);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LE(c[i], c[i - 1]);
}

TEST(EmpiricalDistribution, AddAfterQueryResorts) {
  ew::EmpiricalDistribution d;
  d.add(10);
  EXPECT_DOUBLE_EQ(d.median(), 10.0);
  d.add(0);
  d.add(1);
  EXPECT_DOUBLE_EQ(d.median(), 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  ew::Histogram h{0.0, 10.0, 10};
  h.add(-5);
  h.add(5);
  h.add(50);
  EXPECT_DOUBLE_EQ(h.count(0), 1);
  EXPECT_DOUBLE_EQ(h.count(5), 1);
  EXPECT_DOUBLE_EQ(h.count(9), 1);
  EXPECT_DOUBLE_EQ(h.total(), 3);
}

TEST(LogGrid, EndpointsAndGrowth) {
  const auto g = ew::log_grid(1.0, 1000.0, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_NEAR(g.front(), 1.0, 1e-9);
  EXPECT_NEAR(g.back(), 1000.0, 1e-6);
  EXPECT_NEAR(g[1], 10.0, 1e-6);
}
