// DPI parsers (TLS/HTTP/QUIC/FB-Zero/P2P) and the protocol classifier.
#include <gtest/gtest.h>

#include "dpi/classifier.hpp"
#include "dpi/parsers.hpp"

namespace ew = edgewatch;
using ew::core::TransportProto;
using ew::dpi::L7Protocol;
using ew::dpi::WebProtocol;

// ------------------------------------------------------------------- TLS

TEST(Tls, ClientHelloRoundTripWithSniAndAlpn) {
  const std::string alpn[] = {"h2", "http/1.1"};
  const auto payload = ew::dpi::build_client_hello("www.YouTube.com", alpn);
  ASSERT_TRUE(ew::dpi::looks_like_tls(payload));
  const auto hello = ew::dpi::parse_client_hello(payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->sni, "www.youtube.com");
  ASSERT_EQ(hello->alpn.size(), 2u);
  EXPECT_EQ(hello->alpn[0], "h2");
  EXPECT_EQ(hello->alpn[1], "http/1.1");
  EXPECT_EQ(hello->client_version, 0x0303);
}

TEST(Tls, ClientHelloWithoutExtensions) {
  const auto payload = ew::dpi::build_client_hello("", {});
  const auto hello = ew::dpi::parse_client_hello(payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(hello->sni.empty());
  EXPECT_TRUE(hello->alpn.empty());
}

TEST(Tls, RejectsNonHandshakeRecords) {
  auto payload = ew::dpi::build_client_hello("a.com", {});
  payload[0] = static_cast<std::byte>(0x17);  // application data
  EXPECT_FALSE(ew::dpi::looks_like_tls(payload));
  EXPECT_FALSE(ew::dpi::parse_client_hello(payload).has_value());
}

TEST(Tls, RejectsServerHello) {
  auto payload = ew::dpi::build_client_hello("a.com", {});
  payload[5] = static_cast<std::byte>(0x02);  // handshake type ServerHello
  EXPECT_FALSE(ew::dpi::parse_client_hello(payload).has_value());
}

TEST(Tls, TruncatedHelloFailsCleanly) {
  const auto payload = ew::dpi::build_client_hello("www.facebook.com", {});
  for (std::size_t len : {6u, 20u, 44u}) {
    const auto cut = std::span{payload}.first(len);
    EXPECT_FALSE(ew::dpi::parse_client_hello(cut).has_value()) << len;
  }
}

TEST(Tls, ServerHelloRoundTripWithAlpn) {
  const auto payload = ew::dpi::build_server_hello("h2");
  ASSERT_TRUE(ew::dpi::looks_like_tls(payload));
  const auto hello = ew::dpi::parse_server_hello(payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->alpn, "h2");
  EXPECT_EQ(hello->server_version, 0x0303);
  // The client-hello parser must reject it, and vice versa.
  EXPECT_FALSE(ew::dpi::parse_client_hello(payload).has_value());
  EXPECT_FALSE(
      ew::dpi::parse_server_hello(ew::dpi::build_client_hello("x.com", {})).has_value());
}

TEST(Tls, ServerHelloWithoutAlpn) {
  const auto payload = ew::dpi::build_server_hello("");
  const auto hello = ew::dpi::parse_server_hello(payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(hello->alpn.empty());
}

// ------------------------------------------------------------------ HTTP

TEST(Http, ParsesRequestWithHost) {
  const auto payload = ew::dpi::build_http_request("www.Google.com", "/search?q=x");
  ASSERT_TRUE(ew::dpi::looks_like_http_request(payload));
  const auto req = ew::dpi::parse_http_request(payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/search?q=x");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->host, "www.google.com");
}

TEST(Http, StripsPortFromHost) {
  const auto payload = ew::core::to_bytes("GET / HTTP/1.1\r\nHost: cdn.example.org:8080\r\n\r\n");
  const auto req = ew::dpi::parse_http_request(payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->host, "cdn.example.org");
}

TEST(Http, MissingHostYieldsEmpty) {
  const auto payload = ew::core::to_bytes("GET / HTTP/1.0\r\nAccept: */*\r\n\r\n");
  const auto req = ew::dpi::parse_http_request(payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(req->host.empty());
  EXPECT_EQ(req->version, "HTTP/1.0");
}

TEST(Http, PostRecognized) {
  const auto payload = ew::dpi::build_http_request("upload.example.com", "/u", "POST");
  const auto req = ew::dpi::parse_http_request(payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "POST");
}

TEST(Http, RejectsNonHttpPayloads) {
  EXPECT_FALSE(ew::dpi::looks_like_http_request(ew::core::to_bytes("NOTAMETHOD / X\r\n")));
  EXPECT_FALSE(ew::dpi::parse_http_request(ew::core::to_bytes("GEX / HTTP/1.1\r\n")).has_value());
  EXPECT_FALSE(ew::dpi::parse_http_request(ew::core::to_bytes("GET /nocrlf")).has_value());
}

TEST(Http, ResponseRoundTrip) {
  const auto payload = ew::dpi::build_http_response(200, "video/mp4", 64);
  ASSERT_TRUE(ew::dpi::looks_like_http_response(payload));
  const auto resp = ew::dpi::parse_http_response(payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->version, "HTTP/1.1");
  EXPECT_EQ(resp->content_type, "video/mp4");
}

TEST(Http, ResponseContentTypeParametersStripped) {
  const auto payload =
      ew::core::to_bytes("HTTP/1.1 404 Not Found\r\nContent-Type: text/HTML; charset=utf-8\r\n\r\n");
  const auto resp = ew::dpi::parse_http_response(payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->content_type, "text/html");
}

TEST(Http, ResponseRejectsMalformed) {
  EXPECT_FALSE(ew::dpi::parse_http_response(ew::core::to_bytes("HTTP/1.1 2x0 OK\r\n\r\n"))
                   .has_value());
  EXPECT_FALSE(ew::dpi::parse_http_response(ew::core::to_bytes("GET / HTTP/1.1\r\n\r\n"))
                   .has_value());
  EXPECT_FALSE(ew::dpi::parse_http_response(ew::core::to_bytes("HTTP/1.1")).has_value());
}

// ------------------------------------------------------------------ QUIC

TEST(Quic, ClientPacketRoundTrip) {
  const auto payload = ew::dpi::build_quic_client_packet(0x1122334455667788ull, "Q034");
  ASSERT_TRUE(ew::dpi::looks_like_quic(payload));
  const auto hdr = ew::dpi::parse_quic_header(payload);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->connection_id, 0x1122334455667788ull);
  EXPECT_EQ(hdr->version, "Q034");
}

TEST(Quic, RejectsNonQuicUdp) {
  EXPECT_FALSE(ew::dpi::looks_like_quic(ew::core::to_bytes("plain udp payload here")));
  EXPECT_FALSE(ew::dpi::looks_like_quic(ew::dpi::build_dht_query()));
}

// --------------------------------------------------------------- FB-Zero

TEST(FbZero, HelloRoundTrip) {
  const auto payload = ew::dpi::build_fbzero_hello("Graph.Facebook.com");
  ASSERT_TRUE(ew::dpi::looks_like_fbzero(payload));
  const auto sni = ew::dpi::parse_fbzero_sni(payload);
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, "graph.facebook.com");
  EXPECT_FALSE(ew::dpi::looks_like_tls(payload));
}

// ------------------------------------------------------------------- P2P

TEST(P2p, BittorrentHandshakeDetected) {
  std::vector<std::byte> hash(20, std::byte{0x42});
  const auto payload = ew::dpi::build_bittorrent_handshake(hash);
  EXPECT_TRUE(ew::dpi::looks_like_bittorrent(payload));
  EXPECT_FALSE(ew::dpi::looks_like_edonkey(payload));
}

TEST(P2p, EdonkeyHelloDetected) {
  const auto payload = ew::dpi::build_edonkey_hello();
  EXPECT_TRUE(ew::dpi::looks_like_edonkey(payload));
  EXPECT_FALSE(ew::dpi::looks_like_bittorrent(payload));
}

TEST(P2p, DhtQueryDetected) {
  EXPECT_TRUE(ew::dpi::looks_like_dht(ew::dpi::build_dht_query()));
  EXPECT_FALSE(ew::dpi::looks_like_dht(ew::core::to_bytes("d2:xxnot-dht")));
}

// ------------------------------------------------------------ classifier

TEST(Classifier, TlsWithH2AlpnIsHttp2) {
  const std::string alpn[] = {"h2"};
  const auto payload = ew::dpi::build_client_hello("www.google.com", alpn);
  const auto c = ew::dpi::classify_payload(TransportProto::kTcp, 443, payload);
  EXPECT_EQ(c.l7, L7Protocol::kTls);
  EXPECT_EQ(c.web, WebProtocol::kHttp2);
  EXPECT_EQ(c.server_name, "www.google.com");
  EXPECT_EQ(c.alpn, "h2");
}

TEST(Classifier, SpdyReportingDependsOnProbeVersion) {
  const std::string alpn[] = {"spdy/3.1"};
  const auto payload = ew::dpi::build_client_hello("www.google.com", alpn);

  ew::dpi::ClassifierOptions modern;
  EXPECT_EQ(ew::dpi::classify_payload(TransportProto::kTcp, 443, payload, modern).web,
            WebProtocol::kSpdy);

  // Before the June-2015 upgrade (paper event C) SPDY shows up as TLS.
  ew::dpi::ClassifierOptions legacy;
  legacy.report_spdy = false;
  EXPECT_EQ(ew::dpi::classify_payload(TransportProto::kTcp, 443, payload, legacy).web,
            WebProtocol::kTls);
}

TEST(Classifier, FbZeroReportingDependsOnProbeVersion) {
  const auto payload = ew::dpi::build_fbzero_hello("graph.facebook.com");
  ew::dpi::ClassifierOptions modern;
  const auto c = ew::dpi::classify_payload(TransportProto::kTcp, 443, payload, modern);
  EXPECT_EQ(c.l7, L7Protocol::kFbZero);
  EXPECT_EQ(c.web, WebProtocol::kFbZero);
  EXPECT_EQ(c.server_name, "graph.facebook.com");

  ew::dpi::ClassifierOptions legacy;
  legacy.report_fbzero = false;
  const auto u = ew::dpi::classify_payload(TransportProto::kTcp, 443, payload, legacy);
  EXPECT_EQ(u.l7, L7Protocol::kUnknown);
  EXPECT_EQ(u.web, WebProtocol::kNotWeb);
}

TEST(Classifier, PlainHttp) {
  const auto payload = ew::dpi::build_http_request("example.com");
  const auto c = ew::dpi::classify_payload(TransportProto::kTcp, 80, payload);
  EXPECT_EQ(c.l7, L7Protocol::kHttp);
  EXPECT_EQ(c.web, WebProtocol::kHttp);
  EXPECT_EQ(c.server_name, "example.com");
}

TEST(Classifier, QuicOverUdp) {
  const auto payload = ew::dpi::build_quic_client_packet(42);
  const auto c = ew::dpi::classify_payload(TransportProto::kUdp, 443, payload);
  EXPECT_EQ(c.l7, L7Protocol::kQuic);
  EXPECT_EQ(c.web, WebProtocol::kQuic);
}

TEST(Classifier, DnsByPort) {
  const auto c =
      ew::dpi::classify_payload(TransportProto::kUdp, 53, ew::core::to_bytes("anything"));
  EXPECT_EQ(c.l7, L7Protocol::kDns);
  EXPECT_EQ(c.web, WebProtocol::kNotWeb);
}

TEST(Classifier, P2pProtocols) {
  std::vector<std::byte> hash(20, std::byte{1});
  EXPECT_EQ(ew::dpi::classify_payload(TransportProto::kTcp, 6881,
                                      ew::dpi::build_bittorrent_handshake(hash))
                .l7,
            L7Protocol::kBittorrent);
  EXPECT_EQ(ew::dpi::classify_payload(TransportProto::kTcp, 4662, ew::dpi::build_edonkey_hello()).l7,
            L7Protocol::kEdonkey);
  EXPECT_EQ(ew::dpi::classify_payload(TransportProto::kUdp, 6881, ew::dpi::build_dht_query()).l7,
            L7Protocol::kDht);
  EXPECT_TRUE(ew::dpi::is_p2p(L7Protocol::kBittorrent));
  EXPECT_TRUE(ew::dpi::is_p2p(L7Protocol::kDht));
  EXPECT_FALSE(ew::dpi::is_p2p(L7Protocol::kTls));
}

TEST(Classifier, UnknownPayloadsStayUnknown) {
  const auto c = ew::dpi::classify_payload(TransportProto::kTcp, 12345,
                                           ew::core::to_bytes("\x00\x01\x02\x03 opaque"));
  EXPECT_EQ(c.l7, L7Protocol::kUnknown);
  EXPECT_EQ(c.web, WebProtocol::kNotWeb);
}

TEST(Classifier, ToStringCoversAllLabels) {
  EXPECT_EQ(ew::dpi::to_string(WebProtocol::kFbZero), "FB-ZERO");
  EXPECT_EQ(ew::dpi::to_string(WebProtocol::kHttp2), "HTTP/2");
  EXPECT_EQ(ew::dpi::to_string(L7Protocol::kEdonkey), "EDONKEY");
  EXPECT_EQ(ew::dpi::to_string(L7Protocol::kUnknown), "UNKNOWN");
}
