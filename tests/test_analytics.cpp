// Analytics stage tests: activity criterion, per-day aggregation, and the
// figure-level computations on hand-built and generated data.
#include <gtest/gtest.h>

#include "analytics/day_aggregate.hpp"
#include "analytics/figures.hpp"
#include "analytics/infrastructure.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;
using ew::analytics::ActivityCriteria;
using ew::analytics::DayAggregate;
using ew::analytics::DayAggregator;
using ew::core::CivilDate;
using ew::core::IPv4Address;
using ew::flow::AccessTech;
using ew::flow::FlowRecord;
using ew::services::ServiceId;

namespace {

FlowRecord make_record(IPv4Address client, AccessTech tech, std::string name,
                       std::uint64_t down, std::uint64_t up,
                       ew::dpi::WebProtocol web = ew::dpi::WebProtocol::kTls,
                       int hour = 12) {
  FlowRecord r;
  r.client_ip = client;
  r.server_ip = IPv4Address{157, 240, 1, 1};
  r.access = tech;
  r.proto = ew::core::TransportProto::kTcp;
  r.server_port = 443;
  r.server_name = std::move(name);
  r.l7 = ew::dpi::L7Protocol::kTls;
  r.web = web;
  r.down.bytes = down;
  r.up.bytes = up;
  r.down.packets = down / 1400 + 1;
  r.up.packets = up / 700 + 1;
  r.first_packet = ew::core::Timestamp::from_date_time({2016, 3, 5}, hour, 15);
  r.last_packet = r.first_packet + 30'000'000;
  r.rtt.add(5'000);
  return r;
}

constexpr IPv4Address kSubA{10, 0, 0, 1};
constexpr IPv4Address kSubB{10, 128, 0, 1};

}  // namespace

TEST(ActivityCriteria, PaperThresholds) {
  ew::analytics::SubscriberDay sub;
  sub.flows = 10;
  sub.bytes_down = 15'001;
  sub.bytes_up = 5'001;
  EXPECT_TRUE(sub.active({}));
  sub.flows = 9;
  EXPECT_FALSE(sub.active({}));
  sub.flows = 10;
  sub.bytes_down = 15'000;  // strictly more than 15 kB required
  EXPECT_FALSE(sub.active({}));
  sub.bytes_down = 15'001;
  sub.bytes_up = 5'000;
  EXPECT_FALSE(sub.active({}));
}

TEST(DayAggregator, AccumulatesPerSubscriberAndService) {
  DayAggregator agg{{2016, 3, 5}};
  for (int i = 0; i < 12; ++i) {
    agg.add(make_record(kSubA, AccessTech::kAdsl, "www.facebook.com", 2'000'000, 50'000));
  }
  agg.add(make_record(kSubB, AccessTech::kFtth, "r1.googlevideo.com", 90'000'000, 900'000));
  const auto day = std::move(agg).take();
  ASSERT_EQ(day.total_subscribers(), 2u);
  const auto& a = day.subscribers.at(kSubA);
  EXPECT_EQ(a.flows, 12u);
  EXPECT_EQ(a.bytes_down, 24'000'000u);
  EXPECT_EQ(a.service(ServiceId::kFacebook).flows, 12u);
  EXPECT_EQ(a.service(ServiceId::kYouTube).flows, 0u);
  const auto& b = day.subscribers.at(kSubB);
  EXPECT_EQ(b.service(ServiceId::kYouTube).bytes_down, 90'000'000u);
  EXPECT_EQ(day.active_subscribers(), 1u);  // B has a single flow
}

TEST(DayAggregator, WebBytesAndRttAndServerIps) {
  DayAggregator agg{{2016, 3, 5}};
  agg.add(make_record(kSubA, AccessTech::kAdsl, "www.facebook.com", 1000, 100,
                      ew::dpi::WebProtocol::kHttp2));
  const auto day = std::move(agg).take();
  EXPECT_EQ(day.web_bytes[static_cast<std::size_t>(ew::dpi::WebProtocol::kHttp2)], 1100u);
  EXPECT_EQ(day.total_web_bytes(), 1100u);
  const auto& rtts = day.rtt_min_ms[static_cast<std::size_t>(ServiceId::kFacebook)];
  ASSERT_EQ(rtts.size(), 1u);
  EXPECT_NEAR(rtts[0], 5.0, 1e-9);
  ASSERT_EQ(day.server_ips.size(), 1u);
  EXPECT_TRUE(day.server_ips.begin()->second.serves(ServiceId::kFacebook));
  EXPECT_FALSE(day.server_ips.begin()->second.shared());
}

TEST(DayAggregator, SharedIpDetection) {
  DayAggregator agg{{2016, 3, 5}};
  agg.add(make_record(kSubA, AccessTech::kAdsl, "fbstatic-a.akamaihd.net", 1000, 100));
  agg.add(make_record(kSubA, AccessTech::kAdsl, "instagram-x.akamaihd.net", 1000, 100));
  const auto day = std::move(agg).take();
  ASSERT_EQ(day.server_ips.size(), 1u);  // same server address
  EXPECT_TRUE(day.server_ips.begin()->second.shared());
}

TEST(DayAggregator, DomainBytesUseSecondLevelDomain) {
  DayAggregator agg{{2016, 3, 5}};
  agg.add(make_record(kSubA, AccessTech::kAdsl, "r3---sn-abc.googlevideo.com", 5000, 100));
  agg.add(make_record(kSubA, AccessTech::kAdsl, "www.youtube.com", 2000, 100));
  const auto day = std::move(agg).take();
  EXPECT_EQ(day.domain_bytes.at({ServiceId::kYouTube, "googlevideo.com"}), 5100u);
  EXPECT_EQ(day.domain_bytes.at({ServiceId::kYouTube, "youtube.com"}), 2100u);
}

TEST(SecondLevelDomain, Extraction) {
  EXPECT_EQ(ew::analytics::second_level_domain("a.b.facebook.com"), "facebook.com");
  EXPECT_EQ(ew::analytics::second_level_domain("facebook.com"), "facebook.com");
  EXPECT_EQ(ew::analytics::second_level_domain("localhost"), "localhost");
  EXPECT_EQ(ew::analytics::second_level_domain(""), "");
}

// ----------------------------------------------------------------- figures

namespace {

DayAggregate active_day(CivilDate date, std::initializer_list<FlowRecord> records) {
  DayAggregator agg{date};
  for (const auto& r : records) agg.add(r);
  return std::move(agg).take();
}

/// 12 identical flows make the subscriber comfortably active.
void add_active_subscriber(DayAggregator& agg, IPv4Address ip, AccessTech tech,
                           const std::string& domain, std::uint64_t down_total,
                           std::uint64_t up_total,
                           ew::dpi::WebProtocol web = ew::dpi::WebProtocol::kTls) {
  for (int i = 0; i < 12; ++i) {
    agg.add(make_record(ip, tech, domain, down_total / 12, up_total / 12, web));
  }
}

}  // namespace

TEST(Figures, VolumeTrendAveragesPerTech) {
  DayAggregator agg{{2016, 3, 5}};
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "x.example", 120'000'000, 12'000'000);
  add_active_subscriber(agg, kSubB, AccessTech::kFtth, "x.example", 240'000'000, 24'000'000);
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto rows = ew::analytics::volume_trend(days);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].month, (ew::core::MonthIndex{2016, 3}));
  EXPECT_NEAR(rows[0].down_mb[0], 120.0, 1.0);
  EXPECT_NEAR(rows[0].down_mb[1], 240.0, 2.0);
  EXPECT_NEAR(rows[0].up_mb[0], 12.0, 0.2);
}

TEST(Figures, DailyVolumeDistributionsFilterInactive) {
  DayAggregator agg{{2016, 3, 5}};
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "x.example", 50'000'000, 6'000'000);
  agg.add(make_record(kSubB, AccessTech::kFtth, "x.example", 1000, 100));  // inactive
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto dist = ew::analytics::daily_volume_distributions(days);
  EXPECT_EQ(dist.down[0].size(), 1u);
  EXPECT_EQ(dist.down[1].size(), 0u);
  EXPECT_NEAR(dist.down[0].median(), 50'000'000.0, 100.0);
}

TEST(Figures, ServiceMatrixPopularityThresholds) {
  DayAggregator agg{{2016, 3, 5}};
  // Subscriber A really uses Facebook (12 MB); B only brushes it (embedded
  // Like buttons: 30 kB, below the 300 kB threshold).
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "www.facebook.com", 12'000'000,
                        6'000'000);
  add_active_subscriber(agg, kSubB, AccessTech::kAdsl, "other.example", 40'000'000, 6'000'000);
  agg.add(make_record(kSubB, AccessTech::kAdsl, "www.facebook.com", 30'000, 2'000));
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto matrix = ew::analytics::service_matrix(days);
  ASSERT_EQ(matrix.months.size(), 1u);
  const auto fb = static_cast<std::size_t>(ServiceId::kFacebook);
  EXPECT_NEAR(matrix.cells[fb][0].popularity_pct, 50.0, 1e-6);  // 1 of 2 actives
  EXPECT_GT(matrix.cells[fb][0].byte_share_pct, 10.0);
}

TEST(Figures, ServiceTrendPerUserVolume) {
  DayAggregator agg{{2016, 3, 5}};
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "www.youtube.com", 300'000'000,
                        6'000'000);
  add_active_subscriber(agg, kSubB, AccessTech::kAdsl, "plain.example", 50'000'000, 6'000'000);
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto rows = ew::analytics::service_trend(days, ServiceId::kYouTube);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0].popularity_pct[0], 50.0, 1e-6);
  EXPECT_NEAR(rows[0].mb_per_user[0], 306.0, 1.0);  // 300 down + 6 up
}

TEST(Figures, ProtocolSharesSumToHundred) {
  DayAggregator agg{{2016, 3, 5}};
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "a.example", 60'000'000, 6'000'000,
                        ew::dpi::WebProtocol::kHttp);
  add_active_subscriber(agg, kSubB, AccessTech::kAdsl, "b.example", 20'000'000, 6'000'000,
                        ew::dpi::WebProtocol::kQuic);
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto rows = ew::analytics::protocol_shares(days);
  ASSERT_EQ(rows.size(), 1u);
  double sum = 0;
  for (const auto s : rows[0].share_pct) sum += s;
  EXPECT_NEAR(sum, 100.0, 1e-6);
  EXPECT_GT(rows[0].share_pct[static_cast<std::size_t>(ew::dpi::WebProtocol::kHttp)], 60.0);
}

TEST(Figures, HourlyRatioDetectsGrowth) {
  DayAggregator early{{2014, 4, 10}};
  add_active_subscriber(early, kSubA, AccessTech::kAdsl, "x.example", 100'000'000, 6'000'000);
  DayAggregator late{{2017, 4, 12}};
  add_active_subscriber(late, kSubA, AccessTech::kAdsl, "x.example", 250'000'000, 6'000'000);
  std::vector<DayAggregate> d14, d17;
  d14.push_back(std::move(early).take());
  d17.push_back(std::move(late).take());
  const auto ratios = ew::analytics::hourly_ratio(d17, d14);
  // All volume landed in hour 12 (make_record default).
  EXPECT_NEAR(ratios.ratio[0][12], 2.5, 0.01);
  EXPECT_DOUBLE_EQ(ratios.ratio[0][3], 0.0);  // no traffic either period
}

TEST(Figures, DailyServiceVolumeSortsByDate) {
  std::vector<DayAggregate> days;
  {
    DayAggregator agg{{2014, 7, 2}};
    add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "www.facebook.com", 90'000'000,
                          6'000'000);
    days.push_back(std::move(agg).take());
  }
  {
    DayAggregator agg{{2014, 3, 2}};
    add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "www.facebook.com", 35'000'000,
                          6'000'000);
    days.push_back(std::move(agg).take());
  }
  const auto rows = ew::analytics::daily_service_volume(days, ServiceId::kFacebook);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].date, (CivilDate{2014, 3, 2}));
  EXPECT_LT(rows[0].mb_per_user, rows[1].mb_per_user);
}

TEST(Figures, ServiceReachCountsAtLeastOnceUsage) {
  // Subscriber A uses Netflix on day 1 only; B never does; both active on
  // both days -> reach 50% even though daily popularity is 25%.
  std::vector<DayAggregate> days;
  {
    DayAggregator agg{{2017, 3, 6}};
    add_active_subscriber(agg, kSubA, AccessTech::kFtth, "www.nflxvideo.net", 900'000'000,
                          6'000'000);
    add_active_subscriber(agg, kSubB, AccessTech::kFtth, "plain.example", 50'000'000,
                          6'000'000);
    days.push_back(std::move(agg).take());
  }
  {
    DayAggregator agg{{2017, 3, 7}};
    add_active_subscriber(agg, kSubA, AccessTech::kFtth, "other.example", 30'000'000,
                          6'000'000);
    add_active_subscriber(agg, kSubB, AccessTech::kFtth, "plain.example", 50'000'000,
                          6'000'000);
    days.push_back(std::move(agg).take());
  }
  const auto reach = ew::analytics::service_reach(days, ServiceId::kNetflix);
  EXPECT_EQ(reach.subscribers[1], 2u);
  EXPECT_NEAR(reach.pct[1], 50.0, 1e-9);
  EXPECT_EQ(reach.subscribers[0], 0u);  // no ADSL subscribers in this toy set
  // Daily popularity on the same window is half the reach.
  const auto trend = ew::analytics::service_trend(days, ServiceId::kNetflix);
  EXPECT_NEAR(trend[0].popularity_pct[1], 25.0, 1e-9);
}

TEST(Figures, TopUnclassifiedDomainsRankedByBytes) {
  DayAggregator agg{{2016, 3, 5}};
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "cdn.bigunknown.example", 80'000'000,
                        6'000'000);
  agg.add(make_record(kSubA, AccessTech::kAdsl, "tiny.unknown.example", 5'000, 100));
  agg.add(make_record(kSubA, AccessTech::kAdsl, "www.facebook.com", 1'000'000, 100));
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto top = ew::analytics::top_unclassified_domains(days, 10);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].first, "bigunknown.example");
  EXPECT_GT(top[0].second, top[1].second);
  for (const auto& [domain, _] : top) EXPECT_NE(domain, "facebook.com");
  // The limit is respected.
  EXPECT_EQ(ew::analytics::top_unclassified_domains(days, 1).size(), 1u);
}

TEST(Figures, CategorySharesVideoDominates) {
  DayAggregator agg{{2017, 3, 5}};
  add_active_subscriber(agg, kSubA, AccessTech::kAdsl, "r1.googlevideo.com", 400'000'000,
                        6'000'000);
  add_active_subscriber(agg, kSubB, AccessTech::kAdsl, "www.facebook.com", 60'000'000,
                        6'000'000);
  std::vector<DayAggregate> days;
  days.push_back(std::move(agg).take());
  const auto shares = ew::analytics::category_shares(days);
  ASSERT_FALSE(shares.empty());
  EXPECT_EQ(shares[0].category, ew::services::ServiceCategory::kVideo);
  EXPECT_GT(shares[0].byte_share_pct, 50.0);
  double total = 0;
  for (const auto& row : shares) total += row.byte_share_pct;
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(DayAggregate, MergeCombinesTwoPops) {
  // PoP 1 sees subscriber A; PoP 2 sees B and also more traffic from A
  // (overlap is handled even though real PoPs have disjoint populations).
  DayAggregator pop1{{2016, 3, 5}};
  add_active_subscriber(pop1, kSubA, AccessTech::kAdsl, "www.facebook.com", 12'000'000,
                        6'000'000);
  DayAggregator pop2{{2016, 3, 5}};
  add_active_subscriber(pop2, kSubB, AccessTech::kFtth, "r1.googlevideo.com", 240'000'000,
                        8'000'000);
  pop2.add(make_record(kSubA, AccessTech::kAdsl, "www.facebook.com", 1'000'000, 50'000));

  auto merged = std::move(pop1).take();
  merged.merge(std::move(pop2).take());
  EXPECT_EQ(merged.total_subscribers(), 2u);
  EXPECT_EQ(merged.subscribers.at(kSubA).bytes_down, 13'000'000u);
  EXPECT_EQ(merged.subscribers.at(kSubA).flows, 13u);
  EXPECT_EQ(merged.subscribers.at(kSubB).service(ServiceId::kYouTube).bytes_down,
            240'000'000u);
  EXPECT_EQ(merged.active_subscribers(), 2u);
  // Web bytes and domain maps merged too.
  EXPECT_GT(merged.total_web_bytes(), 0u);
  EXPECT_EQ(merged.domain_bytes.count({ServiceId::kYouTube, "googlevideo.com"}), 1u);
  EXPECT_EQ(merged.domain_bytes.count({ServiceId::kFacebook, "facebook.com"}), 1u);
}

// ----------------------------------------------------------- infrastructure

TEST(Infrastructure, IpLifecycleCountsDedicatedAndShared) {
  std::vector<DayAggregate> days;
  days.push_back(active_day({2015, 1, 1}, {
    make_record(kSubA, AccessTech::kAdsl, "fbstatic-a.akamaihd.net", 1000, 100),
    make_record(kSubA, AccessTech::kAdsl, "instagram-x.akamaihd.net", 1000, 100),
  }));
  const auto rows = ew::analytics::ip_lifecycle(days, ServiceId::kFacebook);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].shared, 1u);  // the Akamai IP serves FB and IG
  EXPECT_EQ(rows[0].dedicated, 0u);
  EXPECT_EQ(rows[0].cumulative_unique, 1u);
}

TEST(Infrastructure, AsnBreakdownUsesRib) {
  std::vector<DayAggregate> days;
  days.push_back(active_day({2015, 1, 1}, {
    make_record(kSubA, AccessTech::kAdsl, "edge1.facebook.com", 1000, 100),
  }));
  ew::asn::Rib rib;
  rib.add_route(*ew::core::IPv4Prefix::parse("157.240.0.0/16"), ew::asn::AsnDirectory::kFacebook);
  const auto rows = ew::analytics::asn_breakdown(
      days, ServiceId::kFacebook, [&](ew::core::MonthIndex) -> const ew::asn::Rib& { return rib; });
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].ips_by_asn.size(), 1u);
  EXPECT_EQ(rows[0].ips_by_asn.begin()->first, ew::asn::AsnDirectory::kFacebook);
  EXPECT_DOUBLE_EQ(rows[0].ips_by_asn.begin()->second, 1.0);
}

TEST(Infrastructure, DomainSharesPercentages) {
  std::vector<DayAggregate> days;
  days.push_back(active_day({2015, 1, 1}, {
    make_record(kSubA, AccessTech::kAdsl, "r1.googlevideo.com", 7000, 0),
    make_record(kSubA, AccessTech::kAdsl, "www.youtube.com", 3000, 0),
  }));
  const auto rows = ew::analytics::domain_shares(days, ServiceId::kYouTube);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0].share_pct.at("googlevideo.com"), 70.0, 1.0);
  EXPECT_NEAR(rows[0].share_pct.at("youtube.com"), 30.0, 1.0);
}

// ----------------------------------- integration: probe path == direct path

TEST(Integration, GeneratedInfrastructureMigrationVisible) {
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(3)};
  std::vector<DayAggregate> days;
  days.push_back(gen.day_aggregate({2013, 6, 10}));
  days.push_back(gen.day_aggregate({2017, 3, 10}));
  const auto rows = ew::analytics::asn_breakdown(
      days, ServiceId::kFacebook,
      [&](ew::core::MonthIndex m) -> const ew::asn::Rib& { return gen.rib(m); });
  ASSERT_EQ(rows.size(), 2u);
  const auto akamai_2013 = rows[0].ips_by_asn.count(ew::asn::AsnDirectory::kAkamai)
                               ? rows[0].ips_by_asn.at(ew::asn::AsnDirectory::kAkamai)
                               : 0.0;
  const auto akamai_2017 = rows[1].ips_by_asn.count(ew::asn::AsnDirectory::kAkamai)
                               ? rows[1].ips_by_asn.at(ew::asn::AsnDirectory::kAkamai)
                               : 0.0;
  const auto fb_2017 = rows[1].ips_by_asn.count(ew::asn::AsnDirectory::kFacebook)
                           ? rows[1].ips_by_asn.at(ew::asn::AsnDirectory::kFacebook)
                           : 0.0;
  EXPECT_GT(akamai_2013, akamai_2017);  // migration away from Akamai
  EXPECT_GT(fb_2017, akamai_2017);      // dedicated CDN dominates in 2017
}

TEST(Integration, DomainGenerationsShiftForYouTube) {
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(3)};
  std::vector<DayAggregate> days;
  days.push_back(gen.day_aggregate({2013, 6, 10}));
  days.push_back(gen.day_aggregate({2016, 6, 10}));
  const auto rows = ew::analytics::domain_shares(days, ServiceId::kYouTube);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0].share_pct.at("youtube.com"), 60.0);
  EXPECT_GT(rows[1].share_pct.at("googlevideo.com"), 60.0);
}
