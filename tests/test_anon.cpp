// Property tests for the prefix-preserving anonymizer.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "anon/anonymizer.hpp"
#include "core/rng.hpp"

namespace ew = edgewatch;
using ew::anon::CustomerAnonymizer;
using ew::anon::PrefixPreservingAnonymizer;
using ew::core::IPv4Address;

namespace {
constexpr ew::core::SipKey kKey{0x1122334455667788ull, 0x99aabbccddeeff00ull};

int common_prefix_len(IPv4Address a, IPv4Address b) {
  const std::uint32_t x = a.value() ^ b.value();
  return x == 0 ? 32 : std::countl_zero(x);
}
}  // namespace

TEST(Anonymizer, DeterministicForFixedKey) {
  PrefixPreservingAnonymizer anon{kKey};
  const IPv4Address a{130, 192, 181, 193};
  EXPECT_EQ(anon.anonymize(a), anon.anonymize(a));
}

TEST(Anonymizer, DifferentKeysDisagree) {
  PrefixPreservingAnonymizer a1{kKey};
  PrefixPreservingAnonymizer a2{{1, 2}};
  const IPv4Address a{130, 192, 181, 193};
  EXPECT_NE(a1.anonymize(a), a2.anonymize(a));
}

TEST(Anonymizer, RoundTripsThroughDeanonymize) {
  PrefixPreservingAnonymizer anon{kKey};
  ew::core::Xoshiro256 rng{99};
  for (int i = 0; i < 2000; ++i) {
    const IPv4Address a{static_cast<std::uint32_t>(rng())};
    EXPECT_EQ(anon.deanonymize(anon.anonymize(a)), a);
  }
}

// The defining CryptoPAn property: anonymization preserves common-prefix
// lengths exactly, in both directions.
TEST(Anonymizer, PreservesCommonPrefixLengthExactly) {
  PrefixPreservingAnonymizer anon{kKey};
  ew::core::Xoshiro256 rng{7};
  for (int i = 0; i < 1500; ++i) {
    const IPv4Address a{static_cast<std::uint32_t>(rng())};
    // Derive b by flipping one random bit position k: common prefix = k.
    const int k = static_cast<int>(ew::core::uniform_below(rng, 32));
    const IPv4Address b{a.value() ^ (1u << (31 - k))};
    ASSERT_EQ(common_prefix_len(a, b), k);
    EXPECT_EQ(common_prefix_len(anon.anonymize(a), anon.anonymize(b)), k);
  }
}

TEST(Anonymizer, IsInjectiveOnSubnet) {
  PrefixPreservingAnonymizer anon{kKey};
  std::set<std::uint32_t> seen;
  for (std::uint32_t host = 0; host < 4096; ++host) {
    const IPv4Address a{(std::uint32_t{10} << 24) | host};
    seen.insert(anon.anonymize(a).value());
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Anonymizer, SubnetMapsToSingleSubnet) {
  // All of 10.1.2.0/24 must land in one (different-looking) /24.
  PrefixPreservingAnonymizer anon{kKey};
  const auto first = anon.anonymize(IPv4Address{10, 1, 2, 0});
  for (int host = 1; host < 256; ++host) {
    const auto mapped = anon.anonymize(IPv4Address{10, 1, 2, static_cast<std::uint8_t>(host)});
    EXPECT_GE(common_prefix_len(first, mapped), 24);
  }
}

// Parameterized sweep: subnets of every prefix length map into exactly one
// subnet of the same length.
class PrefixSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSweep, SubnetIntegrityAtEveryLength) {
  const int len = GetParam();
  PrefixPreservingAnonymizer anon{kKey};
  ew::core::Xoshiro256 rng{static_cast<std::uint64_t>(len) * 977 + 5};
  const auto base = static_cast<std::uint32_t>(rng()) &
                    (len == 0 ? 0u : ~std::uint32_t{0} << (32 - len));
  const auto first = anon.anonymize(IPv4Address{base});
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t host_bits =
        len == 32 ? 0
                  : static_cast<std::uint32_t>(rng()) &
                        (len == 0 ? ~std::uint32_t{0} : (~std::uint32_t{0} >> len));
    const auto mapped = anon.anonymize(IPv4Address{base | host_bits});
    EXPECT_GE(common_prefix_len(first, mapped), len);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixSweep,
                         ::testing::Values(0, 1, 7, 8, 9, 16, 23, 24, 30, 31, 32));

TEST(CustomerAnonymizer, OnlyRewritesCustomerAddresses) {
  const auto net = ew::core::IPv4Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(net.has_value());
  CustomerAnonymizer anon{kKey, *net};
  const IPv4Address customer{10, 5, 6, 7};
  const IPv4Address server{157, 240, 1, 1};
  EXPECT_TRUE(anon.is_customer(customer));
  EXPECT_FALSE(anon.is_customer(server));
  EXPECT_NE(anon.apply(customer), customer);
  EXPECT_EQ(anon.apply(server), server);
}

TEST(CustomerAnonymizer, ConsistentAcrossCalls) {
  const auto net = ew::core::IPv4Prefix::parse("10.0.0.0/8");
  CustomerAnonymizer anon{kKey, *net};
  const IPv4Address c{10, 99, 3, 4};
  const auto first = anon.apply(c);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(anon.apply(c), first);
}
