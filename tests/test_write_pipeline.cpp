// Write-path overhaul tests: the pipelined block encoder must be invisible
// in the bytes (parallel ≡ serial, any worker count, any in-flight bound),
// the adaptive value-segment codec must round-trip against a scalar oracle
// and reject every truncation, layout-2 dictionary delta chains must
// resolve on random access and fail loudly — never mis-resolve — and a
// kill mid-parallel-flush must resume to a byte-identical day file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/bytes.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "obs/obs.hpp"
#include "services/catalog.hpp"
#include "storage/columnar.hpp"
#include "storage/compress.hpp"
#include "storage/datalake.hpp"
#include "storage/fault_injection.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;
using ew::core::CivilDate;
using ew::core::ThreadPool;
using ew::flow::FlowRecord;

namespace {

fs::path fresh_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / ("ew_wpipe_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::byte> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<std::byte> out(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()));
  return out;
}

std::vector<std::byte> day_bytes(const ew::storage::DataLake& lake, CivilDate day) {
  return file_bytes(lake.root() / ew::storage::DataLake::day_filename(day));
}

/// Deterministic records with dictionaries that overlap across blocks (so
/// delta coding engages) yet differ per block (so a chain mis-resolution
/// would be observable): most names come from a shared pool, a few are
/// unique to their block.
std::vector<FlowRecord> make_records(CivilDate day, std::size_t n,
                                     bool block2_udp_only = false) {
  static const char* kNames[] = {
      "static.example.com",    "edge-star.facebook.com", "r3---sn.googlevideo.com",
      "cdn.sstatic.net",       "api.twitter.com",        "img.service.example.net",
      "video.cdn.example.org", "push.messenger.test",
  };
  static const char* kContentTypes[] = {"", "video/mp4", "text/html", "image/jpeg"};
  std::vector<FlowRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t block = i / ew::storage::DataLake::kBlockRecords;
    FlowRecord r;
    r.client_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(0x0a000000 + i % 4099)};
    r.server_ip = ew::core::IPv4Address{static_cast<std::uint32_t>(0x5db8d800 + i % 61)};
    r.client_port = static_cast<std::uint16_t>(40'000 + i % 20'000);
    r.server_port = i % 2 ? 443 : 80;
    const bool udp = block2_udp_only && block == 2;
    r.proto = udp || i % 7 == 0 ? ew::core::TransportProto::kUdp
                                : ew::core::TransportProto::kTcp;
    r.first_packet = ew::core::Timestamp::from_date_time(day, static_cast<int>(block % 24)) +
                     static_cast<std::int64_t>(i % 4096) * 1000;
    r.last_packet = r.first_packet + static_cast<std::int64_t>(1'000'000 + i % 997);
    r.up.packets = i % 83;
    r.up.bytes = (i % 83) * 311;
    r.down.packets = i % 131;
    r.down.bytes = (i % 131) * 1441;
    if (i % 4) r.rtt.add(static_cast<std::int64_t>(2'000 + i % 57'000));
    r.l7 = i % 2 ? ew::dpi::L7Protocol::kTls : ew::dpi::L7Protocol::kHttp;
    if (i % 16 == 0) {
      // A per-block-unique dictionary entry: block b's name dictionary is
      // a strict superset of the shared pool, different for every block.
      r.server_name = "host-" + std::to_string(block) + "-" + std::to_string(i % 4096 / 256) +
                      ".unique.example.net";
    } else {
      r.server_name = kNames[i % (sizeof(kNames) / sizeof(kNames[0]))];
    }
    r.content_type = kContentTypes[i % (sizeof(kContentTypes) / sizeof(kContentTypes[0]))];
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- codec v2

TEST(CodecV2, ValueSegmentsRoundTripAgainstScalarOracle) {
  // Shapes chosen to make each codec win at least once; every one must
  // round-trip exactly regardless of which envelope was picked.
  ew::core::Xoshiro256 rng{0xC0DEC42};
  std::vector<std::vector<std::uint64_t>> cases;
  cases.push_back({});                                  // empty
  cases.push_back({0});                                 // single
  cases.push_back(std::vector<std::uint64_t>(4096, 7));  // constant -> RLE
  {
    std::vector<std::uint64_t> clustered;               // tight range -> FOR
    for (std::size_t i = 0; i < 4096; ++i) clustered.push_back(1'500'000'000 + (rng() & 1023));
    cases.push_back(std::move(clustered));
  }
  {
    std::vector<std::uint64_t> runs;                    // long runs -> RLE
    for (std::size_t i = 0; i < 4096; ++i) runs.push_back(i / 512);
    cases.push_back(std::move(runs));
  }
  {
    std::vector<std::uint64_t> random;                  // incompressible
    for (std::size_t i = 0; i < 4096; ++i) random.push_back(rng());
    cases.push_back(std::move(random));
  }
  {
    std::vector<std::uint64_t> wide;                    // full-width extremes
    for (std::size_t i = 0; i < 257; ++i) {
      wide.push_back(i % 2 ? 0 : std::numeric_limits<std::uint64_t>::max() - i);
    }
    cases.push_back(std::move(wide));
  }

  ew::storage::CompressScratch cs;
  std::vector<std::byte> env, scratch;
  bool saw_for = false, saw_rle = false;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const auto& values = cases[c];
    env.clear();
    const auto r = ew::storage::compress_u64_segment(values, env, cs);
    EXPECT_EQ(r.bytes_out, env.size()) << "case " << c;
    saw_for |= r.scheme == ew::storage::kSchemeForBitpack;
    saw_rle |= r.scheme == ew::storage::kSchemeRle;
    std::vector<std::uint64_t> got(values.size() + 1, 0xdead);
    ASSERT_TRUE(ew::storage::decompress_u64_segment(env, values.size(), got.data(), scratch))
        << "case " << c;
    got.pop_back();
    EXPECT_TRUE(std::equal(values.begin(), values.end(), got.begin())) << "case " << c;
    // Wrong expected count must be rejected, not padded or truncated.
    if (!values.empty()) {
      std::vector<std::uint64_t> wrong(values.size() + 1);
      EXPECT_FALSE(ew::storage::decompress_u64_segment(env, values.size() + 1, wrong.data(),
                                                       scratch));
      EXPECT_FALSE(ew::storage::decompress_u64_segment(env, values.size() - 1, wrong.data(),
                                                       scratch));
    }
  }
  EXPECT_TRUE(saw_for);
  EXPECT_TRUE(saw_rle);
}

TEST(CodecV2, TruncatedEnvelopesAreRejectedAtEveryByteOffset) {
  ew::core::Xoshiro256 rng{0x7125};
  ew::storage::CompressScratch cs;
  std::vector<std::byte> scratch;
  const auto sweep = [&](const std::vector<std::uint64_t>& values) {
    std::vector<std::byte> env;
    (void)ew::storage::compress_u64_segment(values, env, cs);
    std::vector<std::uint64_t> out(values.size() + 1);
    for (std::size_t cut = 0; cut < env.size(); ++cut) {
      EXPECT_FALSE(ew::storage::decompress_u64_segment(
          std::span<const std::byte>{env.data(), cut}, values.size(), out.data(), scratch))
          << "cut=" << cut;
    }
    // Trailing garbage is as malformed as a missing tail.
    env.push_back(std::byte{0x5a});
    EXPECT_FALSE(
        ew::storage::decompress_u64_segment(env, values.size(), out.data(), scratch));
  };
  sweep(std::vector<std::uint64_t>(1024, 42));                       // RLE
  {
    std::vector<std::uint64_t> clustered;
    for (std::size_t i = 0; i < 1024; ++i) clustered.push_back(9'000'000 + (rng() & 8191));
    sweep(clustered);                                                // FOR
  }
  {
    std::vector<std::uint64_t> random;
    for (std::size_t i = 0; i < 512; ++i) random.push_back(rng());
    sweep(random);                                                   // stored varint
  }
  {
    std::vector<std::uint64_t> runs;
    for (std::size_t i = 0; i < 2048; ++i) runs.push_back(i / 300);
    sweep(runs);
  }
}

TEST(CodecV2, MutatedEnvelopesNeverCrashAndNeverOverDeliver) {
  ew::core::Xoshiro256 rng{0xF00D};
  ew::storage::CompressScratch cs;
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < 1024; ++i) values.push_back(100'000 + (rng() & 2047));
  std::vector<std::byte> env;
  (void)ew::storage::compress_u64_segment(values, env, cs);
  std::vector<std::byte> scratch;
  std::vector<std::uint64_t> out(values.size());
  std::vector<std::byte> mut;
  for (int i = 0; i < 20'000; ++i) {
    mut = env;
    const std::size_t flips = 1 + ew::core::uniform_below(rng, 6);
    for (std::size_t f = 0; f < flips; ++f) {
      mut[ew::core::uniform_below(rng, mut.size())] ^= static_cast<std::byte>(1u << (rng() & 7));
    }
    if (i % 5 == 0) mut.resize(ew::core::uniform_below(rng, mut.size() + 1));
    (void)ew::storage::decompress_u64_segment(mut, values.size(), out.data(), scratch);
  }
}

// ------------------------------------------------------- pipelined encode

TEST(WritePipeline, ParallelEncodeIsByteIdenticalToSerial) {
  const CivilDate day{2017, 3, 9};
  // Two appends: 10 blocks then 3 — crossing both the kDictChainInterval
  // restart inside an append and the chain break at the append boundary.
  const auto batch1 = make_records(day, 10 * ew::storage::DataLake::kBlockRecords + 777);
  const auto batch2 = make_records(day, 2 * ew::storage::DataLake::kBlockRecords + 33);

  const auto golden_dir = fresh_dir("golden");
  ew::storage::DataLake golden(golden_dir);
  ASSERT_TRUE(golden.append(day, batch1).has_value());
  ASSERT_TRUE(golden.append(day, batch2).has_value());
  const auto want = day_bytes(golden, day);
  ASSERT_GT(want.size(), 1000u);
  ASSERT_TRUE(golden.fsck_day(day).healthy());

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const std::size_t max_inflight : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " inflight=" + std::to_string(max_inflight));
      ThreadPool pool(workers);
      const auto dir = fresh_dir("par_" + std::to_string(workers) + "_" +
                                 std::to_string(max_inflight));
      ew::storage::DataLake lake(dir);
      lake.set_encode_pool(&pool, max_inflight);
      ASSERT_TRUE(lake.append(day, batch1).has_value());
      ASSERT_TRUE(lake.append(day, batch2).has_value());
      lake.set_encode_pool(nullptr);
      EXPECT_EQ(day_bytes(lake, day), want);
    }
  }

  if constexpr (ew::obs::kEnabled) {
    // The pipeline drained: nothing in flight once append returned, and
    // the per-codec tallies actually moved.
    auto& reg = ew::obs::Registry::global();
    EXPECT_EQ(reg.gauge("lake_encode_inflight_blocks").value(), 0);
    const std::uint64_t out_bytes = reg.counter("lake_codec_stored_bytes_out_total").value() +
                                    reg.counter("lake_codec_lz_bytes_out_total").value() +
                                    reg.counter("lake_codec_for_bytes_out_total").value() +
                                    reg.counter("lake_codec_rle_bytes_out_total").value();
    EXPECT_GT(out_bytes, 0u);
  }
}

TEST(WritePipeline, AppendCursorCacheIsTransparent) {
  const CivilDate day{2017, 4, 1};
  const auto reference_dir = fresh_dir("cur_ref");
  const auto cached_dir = fresh_dir("cur_hot");
  ew::storage::DataLake reference(reference_dir);
  reference.set_append_cursor_cache(false);  // seed behaviour: reparse every append
  ew::storage::DataLake cached(cached_dir);  // default: cursor cache on

  for (std::size_t batch = 0; batch < 5; ++batch) {
    const auto records =
        make_records(day, ew::storage::DataLake::kBlockRecords + 100 * batch + 1);
    ASSERT_TRUE(reference.append(day, records).has_value());
    ASSERT_TRUE(cached.append(day, records).has_value());
    ASSERT_EQ(day_bytes(cached, day), day_bytes(reference, day)) << "batch " << batch;
  }

  // Out-of-band change: truncating to a mid-file offset leaves a torn tail
  // both lakes must re-derive identically (cache invalidated, not trusted).
  const auto size = reference.file_bytes(day);
  ASSERT_TRUE(reference.truncate_day(day, size / 2).has_value());
  ASSERT_TRUE(cached.truncate_day(day, size / 2).has_value());
  const auto more = make_records(day, 1234);
  ASSERT_TRUE(reference.append(day, more).has_value());
  ASSERT_TRUE(cached.append(day, more).has_value());
  EXPECT_EQ(day_bytes(cached, day), day_bytes(reference, day));
  EXPECT_TRUE(cached.fsck_day(day).healthy());

  // External rewrite behind the lake's back: the stat check must catch it.
  ASSERT_TRUE(cached.rewrite_day(day, ew::storage::LakeFormat::kV3).has_value());
  ASSERT_TRUE(reference.rewrite_day(day, ew::storage::LakeFormat::kV3).has_value());
  ASSERT_TRUE(cached.append(day, more).has_value());
  ASSERT_TRUE(reference.append(day, more).has_value());
  EXPECT_EQ(day_bytes(cached, day), day_bytes(reference, day));
}

TEST(WritePipeline, KillMidParallelFlushResumesByteIdentical) {
  const CivilDate day{2017, 5, 20};
  const auto batch1 = make_records(day, 3 * ew::storage::DataLake::kBlockRecords);
  const auto batch2 = make_records(day, 9 * ew::storage::DataLake::kBlockRecords + 55);

  // Golden: both appends, uninterrupted (serial — identity with the
  // parallel encoder is covered above; here the crash is the subject).
  const auto golden_dir = fresh_dir("chaos_golden");
  ew::storage::DataLake golden(golden_dir);
  ASSERT_TRUE(golden.append(day, batch1).has_value());
  const std::uint64_t durable = golden.file_bytes(day);  // the checkpointed length
  ASSERT_TRUE(golden.append(day, batch2).has_value());
  const auto want = day_bytes(golden, day);

  // FaultPlan::at_byte counts bytes written through the handle, i.e. within
  // the second append's own stream (open_at's base is excluded).
  const std::uint64_t flush_bytes = want.size() - durable;
  ASSERT_GT(flush_bytes, 100u);
  ThreadPool pool(4);
  for (const std::uint64_t at :
       {std::uint64_t{1}, flush_bytes / 10, flush_bytes / 2, flush_bytes - 5}) {
    SCOPED_TRACE("crash at stream byte " + std::to_string(at));
    const auto dir = fresh_dir("chaos_" + std::to_string(at));
    ew::storage::DataLake lake(dir);
    lake.set_encode_pool(&pool);
    ASSERT_TRUE(lake.append(day, batch1).has_value());

    // Kill the process (simulated) part-way through the second flush's
    // write stream: rollback fails too, a torn tail stays behind.
    lake.set_file_factory(ew::storage::FaultyFile::factory_once(
        {ew::storage::FaultKind::kCrashAtOffset, at, 0}));
    const auto crashed = lake.append(day, batch2);
    ASSERT_FALSE(crashed.has_value());
    EXPECT_EQ(crashed.error(), ew::core::Errc::kCrashed);

    // Fresh process: fsck sees the tear, resume truncates back to the
    // checkpointed durable length and replays the batch.
    ew::storage::DataLake resumed(dir);
    resumed.set_encode_pool(&pool);
    EXPECT_FALSE(resumed.fsck_day(day).healthy());
    ASSERT_TRUE(resumed.truncate_day(day, durable).has_value());
    ASSERT_TRUE(resumed.append(day, batch2).has_value());
    EXPECT_EQ(day_bytes(resumed, day), want);
    EXPECT_TRUE(resumed.fsck_day(day).healthy());
  }
}

// ------------------------------------------------- dictionary delta chains

TEST(WritePipeline, DeltaChainsResolveOnRandomAccessAndFailLoudlyWithout) {
  const CivilDate day{2017, 6, 6};
  const auto dir = fresh_dir("chains");
  ew::storage::DataLake lake(dir);
  ASSERT_TRUE(
      lake.append(day, make_records(day, 4 * ew::storage::DataLake::kBlockRecords)).has_value());
  const auto idx = lake.load_day_blocks(day);
  ASSERT_GE(idx.blocks().size(), 4u);

  const auto sink = [](const FlowRecord&) {};
  {
    // Block 1 is mid-chain (its dictionaries delta-code against block 0's,
    // which differ from every other block's). Random access without a
    // resolver must refuse — silently mis-resolving against nothing (or a
    // stale cache) would fabricate wrong server names.
    ew::storage::ColumnScratch scratch;
    std::uint64_t delivered = 0;
    const auto& b = idx.blocks()[1];
    EXPECT_EQ(ew::storage::decode_columnar_block(idx.body(b), scratch, nullptr, delivered, sink,
                                                 b.record_count),
              ew::storage::BlockDecodeStatus::kCorrupt);
    EXPECT_EQ(delivered, 0u);
  }
  {
    // Same block, resolver over the day's adjacency: full delivery.
    ew::storage::ColumnScratch scratch;
    std::uint64_t delivered = 0;
    const auto& b = idx.blocks()[1];
    const auto resolve = [&](std::size_t back) -> std::span<const std::byte> {
      if (back == 0 || back > 1) return {};
      return idx.body(idx.blocks()[1 - back]);
    };
    const ew::storage::PrevBlockResolver resolver{resolve};
    EXPECT_EQ(ew::storage::decode_columnar_block(idx.body(b), scratch, nullptr, delivered, sink,
                                                 b.record_count, &resolver),
              ew::storage::BlockDecodeStatus::kOk);
    EXPECT_EQ(delivered, b.record_count);
  }
  {
    // A resolver pointing at the WRONG predecessor must be detected by the
    // chain CRC — mis-resolution is corruption, never a best effort.
    ew::storage::ColumnScratch scratch;
    std::uint64_t delivered = 0;
    const auto& b = idx.blocks()[2];
    const auto wrong = [&](std::size_t back) -> std::span<const std::byte> {
      if (back == 0 || back > 2) return {};
      return idx.body(idx.blocks()[0]);  // claims block 0 is the predecessor
    };
    const ew::storage::PrevBlockResolver resolver{wrong};
    EXPECT_EQ(ew::storage::decode_columnar_block(idx.body(b), scratch, nullptr, delivered, sink,
                                                 b.record_count, &resolver),
              ew::storage::BlockDecodeStatus::kCorrupt);
    EXPECT_EQ(delivered, 0u);
  }
}

TEST(WritePipeline, ZonePrunedPredecessorStillResolvesViaChainWalk) {
  // Block 2 is all-UDP; a TCP-only scan prunes it from its zone map alone,
  // so block 3's dictionary chain cannot use the sequential cache and must
  // walk back through the pruned (healthy) block. Delivery must equal the
  // decode-then-filter oracle exactly.
  const CivilDate day{2017, 7, 14};
  const auto records =
      make_records(day, 5 * ew::storage::DataLake::kBlockRecords, /*block2_udp_only=*/true);
  const auto dir = fresh_dir("prune_walk");
  ew::storage::DataLake lake(dir);
  ASSERT_TRUE(lake.append(day, records).has_value());

  const auto pred = ew::storage::ScanPredicate::for_proto(ew::core::TransportProto::kTcp);
  std::size_t oracle = 0;
  for (const auto& r : records) oracle += pred.matches(r);
  ASSERT_GT(oracle, 0u);

  std::uint64_t got = 0;
  const auto scan = lake.scan_day(day, pred, [&](const FlowRecord&) { ++got; });
  EXPECT_TRUE(scan.ok());
  EXPECT_GE(scan.blocks_pruned, 1u);
  EXPECT_EQ(got, oracle);
}

TEST(WritePipeline, DamagedPredecessorDictionaryIsSalvagedByDependents) {
  const CivilDate day{2017, 8, 2};
  const std::size_t nblocks = 10;
  const auto records = make_records(day, nblocks * ew::storage::DataLake::kBlockRecords);
  const auto dir = fresh_dir("salvage");
  ew::storage::DataLake lake(dir);
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto idx = lake.load_day_blocks(day);
  ASSERT_EQ(idx.blocks().size(), nblocks);

  // Flip one byte in the middle of block 2's body on disk: its frame CRC
  // fails, but its dictionary bytes are intact.
  const auto path = lake.root() / ew::storage::DataLake::day_filename(day);
  {
    const auto& b = idx.blocks()[2];
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(b.offset + b.header_size + b.body_len / 2));
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(b.offset + b.header_size + b.body_len / 2));
    c = static_cast<char>(c ^ 0x10);
    f.write(&c, 1);
  }

  // Scan: block 2's records are gone, but blocks 3-7 recover its dictionary
  // from the damaged frame (the carved candidate's resolved dictionary
  // hashes to their links' recorded CRC) — a body bit-flip costs exactly
  // one block, not the chain tail.
  std::uint64_t delivered = 0;
  const auto scan = lake.scan_day(day, [&](const FlowRecord&) { ++delivered; });
  EXPECT_EQ(scan.errc, ew::core::Errc::kCorrupt);
  EXPECT_EQ(delivered, 9 * ew::storage::DataLake::kBlockRecords);
  EXPECT_EQ(lake.fsck_day(day).records_lost, ew::storage::DataLake::kBlockRecords);

  // Repair quarantines only the damaged block. Block 3's delta link died
  // with it, so repair must transcode block 3 into a chain head; block 4
  // onward still delta-link to block 3's (unchanged) dictionary.
  const auto health = lake.repair_day(day);
  EXPECT_TRUE(health.repaired);
  EXPECT_EQ(health.blocks_quarantined, 1u);
  const auto after = lake.fsck_day(day);
  EXPECT_TRUE(after.healthy());
  EXPECT_EQ(after.records_ok, 9 * ew::storage::DataLake::kBlockRecords);
  std::uint64_t redelivered = 0;
  EXPECT_TRUE(lake.scan_day(day, [&](const FlowRecord&) { ++redelivered; }).ok());
  EXPECT_EQ(redelivered, delivered);
}

TEST(WritePipeline, DestroyedDictionaryCascadesQuarantineToChainTail) {
  const CivilDate day{2017, 8, 3};
  const std::size_t nblocks = 10;
  const auto records = make_records(day, nblocks * ew::storage::DataLake::kBlockRecords);
  const auto dir = fresh_dir("cascade");
  ew::storage::DataLake lake(dir);
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto idx = lake.load_day_blocks(day);
  ASSERT_EQ(idx.blocks().size(), nblocks);

  // Shred block 2's body — a flip every 16 bytes reaches its dictionary
  // segments — while leaving the frame header intact, so a salvage
  // candidate IS carved but its resolved dictionary cannot hash to the
  // dependents' link CRCs.
  const auto path = lake.root() / ew::storage::DataLake::day_filename(day);
  {
    const auto& b = idx.blocks()[2];
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    for (std::size_t off = 0; off < b.body_len; off += 16) {
      const auto at = static_cast<std::streamoff>(b.offset + b.header_size + off);
      f.seekg(at);
      char c = 0;
      f.read(&c, 1);
      f.seekp(at);
      c = static_cast<char>(c ^ 0x10);
      f.write(&c, 1);
    }
  }

  // Scan: blocks 0-1 deliver; 2 is CRC-damaged beyond salvage; 3-7 fail
  // their chain CRCs and are skipped — never delivered with dictionaries
  // from the wrong block; 8 is a chain head (every kDictChainInterval-th
  // block re-emits full dictionaries) and 9 follows.
  std::uint64_t delivered = 0;
  const auto scan = lake.scan_day(day, [&](const FlowRecord&) { ++delivered; });
  EXPECT_EQ(scan.errc, ew::core::Errc::kCorrupt);
  EXPECT_EQ(delivered, 4 * ew::storage::DataLake::kBlockRecords);

  // Repair quarantines the damaged block AND its dependent chain tail; the
  // repaired file must be fully healthy and deliver the same survivors.
  const auto health = lake.repair_day(day);
  EXPECT_TRUE(health.repaired);
  EXPECT_GE(health.blocks_quarantined, 1u);
  const auto after = lake.fsck_day(day);
  EXPECT_TRUE(after.healthy());
  EXPECT_EQ(after.records_ok, 4 * ew::storage::DataLake::kBlockRecords);
  std::uint64_t redelivered = 0;
  EXPECT_TRUE(lake.scan_day(day, [&](const FlowRecord&) { ++redelivered; }).ok());
  EXPECT_EQ(redelivered, delivered);
}

// ------------------------------------------------------------- read compat

TEST(WritePipeline, Layout1BlocksRemainReadableThroughSharedDecoder) {
  // Pre-overhaul v3 files carry layout-1 bodies (full dictionaries, codec
  // v1 segments). The frozen layout-1 encoder stands in for those
  // historical bytes: a stream of layout-1 blocks, and a layout-1 block
  // followed by a current layout-2 chain head, must both decode through
  // the one shared decoder with a single sequential scratch.
  const CivilDate day{2017, 9, 30};
  const auto a = make_records(day, ew::storage::DataLake::kBlockRecords);
  const auto b = make_records(day, ew::storage::DataLake::kBlockRecords + 11);
  const auto& catalog = ew::services::ServiceCatalog::standard();

  ew::core::ByteWriter old1, old2, current;
  ew::storage::encode_columnar_block_layout1(a, catalog, old1);
  ew::storage::encode_columnar_block_layout1(b, catalog, old2);
  ew::storage::encode_columnar_block(b, catalog, current);  // layout-2 chain head

  const auto decode_ok = [](std::span<const std::byte> body, std::size_t want,
                            ew::storage::ColumnScratch& scratch) {
    std::uint64_t n = 0;
    std::size_t names_seen = 0;
    const auto count_names = [&](const FlowRecord& r) { names_seen += !r.server_name.empty(); };
    const auto status = ew::storage::decode_columnar_block(
        body, scratch, nullptr, n, count_names, static_cast<std::uint32_t>(want));
    return status == ew::storage::BlockDecodeStatus::kOk && n == want && names_seen == want;
  };

  ew::storage::ColumnScratch scratch;
  EXPECT_TRUE(decode_ok(old1.view(), a.size(), scratch));   // layout-1 …
  EXPECT_TRUE(decode_ok(old2.view(), b.size(), scratch));   // … then layout-1
  EXPECT_TRUE(decode_ok(current.view(), b.size(), scratch));  // … then layout-2 head

  // Fresh scratch, layout-2 head first: chain heads never need history.
  ew::storage::ColumnScratch fresh;
  EXPECT_TRUE(decode_ok(current.view(), b.size(), fresh));
  EXPECT_TRUE(decode_ok(old1.view(), a.size(), fresh));

  // Layout-1 bodies are self-contained too: random access, no resolver.
  ew::storage::ColumnScratch random_access;
  EXPECT_TRUE(decode_ok(old2.view(), b.size(), random_access));
}
