// v2 ↔ v3 golden equivalence: the columnar rewrite must be invisible to
// every consumer. The same record stream stored row-wise (v2) and
// columnar (v3) has to produce byte-identical day aggregates and rollups,
// predicate pushdown has to deliver exactly what post-decode filtering
// delivers, the parallel scanner has to reproduce the serial one, and the
// query engine's raw-lake fallback has to be indistinguishable from a
// rollup-answered day.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "analytics/parallel.hpp"
#include "core/thread_pool.hpp"
#include "query/engine.hpp"
#include "query/rollup.hpp"
#include "query/store.hpp"
#include "storage/codec.hpp"
#include "storage/columnar.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;
using ew::core::CivilDate;
using ew::core::ThreadPool;
using ew::flow::FlowRecord;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::path(::testing::TempDir()) /
           ("ew_colgold_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

void expect_aggregates_equal(const ew::analytics::DayAggregate& a,
                             const ew::analytics::DayAggregate& b) {
  EXPECT_EQ(a.date.to_string(), b.date.to_string());
  EXPECT_EQ(a.web_bytes, b.web_bytes);
  EXPECT_EQ(a.downlink_bins, b.downlink_bins);
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    EXPECT_EQ(a.rtt_min_ms[s], b.rtt_min_ms[s]) << "service " << s;  // exact order
    EXPECT_EQ(a.health[s].packets, b.health[s].packets);
    EXPECT_EQ(a.health[s].retransmits, b.health[s].retransmits);
  }
  ASSERT_EQ(a.subscribers.size(), b.subscribers.size());
  for (const auto& [ip, sub] : a.subscribers) {
    const auto it = b.subscribers.find(ip);
    ASSERT_NE(it, b.subscribers.end());
    EXPECT_EQ(sub.flows, it->second.flows);
    EXPECT_EQ(sub.bytes_up, it->second.bytes_up);
    EXPECT_EQ(sub.bytes_down, it->second.bytes_down);
    for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
      EXPECT_EQ(sub.per_service[s].flows, it->second.per_service[s].flows);
      EXPECT_EQ(sub.per_service[s].bytes_down, it->second.per_service[s].bytes_down);
    }
  }
  ASSERT_EQ(a.server_ips.size(), b.server_ips.size());
  EXPECT_EQ(a.domain_bytes, b.domain_bytes);
  EXPECT_EQ(a.unclassified_domain_bytes, b.unclassified_domain_bytes);
}

/// Wire-encode a record stream for byte-exact comparison.
std::string encode_stream(const std::vector<FlowRecord>& records) {
  ew::core::ByteWriter w;
  for (const auto& r : records) ew::storage::encode_record(r, w);
  return std::string(reinterpret_cast<const char*>(w.view().data()), w.size());
}

std::vector<FlowRecord> paper_day(CivilDate day) {
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(7, 0.2)};
  return gen.day_records(day);
}

/// Two lakes over the same records, one per format.
struct FormatPair {
  TempDir v2_dir, v3_dir;
  ew::storage::DataLake v2, v3;
  FormatPair(CivilDate day, const std::vector<FlowRecord>& records)
      : v2(v2_dir.path), v3(v3_dir.path) {
    v2.set_write_format(ew::storage::LakeFormat::kV2);
    EXPECT_TRUE(v2.append(day, records).has_value());
    EXPECT_TRUE(v3.append(day, records).has_value());
    EXPECT_EQ(v2.fsck_day(day).version, 2);
    EXPECT_EQ(v3.fsck_day(day).version, 3);
  }
};

}  // namespace

TEST(ColumnarGolden, AggregatesAndRollupsAreByteIdenticalAcrossFormats) {
  const CivilDate day{2015, 6, 10};
  const auto records = paper_day(day);
  FormatPair lakes(day, records);

  const auto from_v2 = ew::analytics::aggregate_day(lakes.v2, day);
  const auto from_v3 = ew::analytics::aggregate_day(lakes.v3, day);
  ASSERT_TRUE(from_v2.scan.ok());
  ASSERT_TRUE(from_v3.scan.ok());
  EXPECT_EQ(from_v2.scan.records_delivered, from_v3.scan.records_delivered);
  expect_aggregates_equal(from_v2.aggregate, from_v3.aggregate);

  // The figure-feeding rollups — counters, HLLs, quantile sketches — are
  // byte-identical, so every downstream figure is too.
  for (std::size_t d = 0; d < ew::query::kDimensionCount; ++d) {
    const auto dim = static_cast<ew::query::Dimension>(d);
    const auto r2 = ew::query::build_day_rollup(from_v2.aggregate, dim);
    const auto r3 = ew::query::build_day_rollup(from_v3.aggregate, dim);
    EXPECT_EQ(ew::query::encode_rollup(r2), ew::query::encode_rollup(r3))
        << "dimension " << d;
  }
}

TEST(ColumnarGolden, RewriteDayIsLossless) {
  const CivilDate day{2015, 7, 1};
  const auto records = paper_day(day);
  TempDir dir;
  ew::storage::DataLake lake(dir.path);
  lake.set_write_format(ew::storage::LakeFormat::kV2);
  ASSERT_TRUE(lake.append(day, records).has_value());
  const auto before = ew::analytics::aggregate_day(lake, day);

  ASSERT_TRUE(lake.rewrite_day(day, ew::storage::LakeFormat::kV3).has_value());
  ASSERT_EQ(lake.fsck_day(day).version, 3);
  ASSERT_TRUE(lake.fsck_day(day).healthy());
  const auto after = ew::analytics::aggregate_day(lake, day);

  EXPECT_EQ(encode_stream(lake.read_day(day)), encode_stream(records));
  expect_aggregates_equal(before.aggregate, after.aggregate);
}

TEST(ColumnarGolden, PushdownDeliversExactlyThePostFilterSet) {
  const CivilDate day{2015, 8, 15};
  // Time-sort the synthetic stream (the generator emits subscriber-major)
  // so blocks are time-clustered and the window predicate can prune.
  auto records = paper_day(day);
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.first_packet < b.first_packet;
                   });
  FormatPair lakes(day, records);

  ew::storage::ScanPredicate pred =
      ew::storage::ScanPredicate::for_service(ew::services::ServiceId::kYouTube);
  pred.time_min_us = ew::core::Timestamp::from_date_time(day, 8).micros();
  pred.time_max_us = ew::core::Timestamp::from_date_time(day, 20).micros() - 1;

  // The oracle: decode everything, filter afterwards.
  std::vector<FlowRecord> oracle;
  for (const auto& r : records) {
    if (pred.matches(r)) oracle.push_back(r);
  }
  ASSERT_FALSE(oracle.empty());
  ASSERT_LT(oracle.size(), records.size());

  for (auto* lake : {&lakes.v2, &lakes.v3}) {
    std::vector<FlowRecord> got;
    auto sink = [&](const FlowRecord& r) { got.push_back(r); };
    const auto scan = lake->scan_day(day, pred, sink);
    EXPECT_TRUE(scan.ok());
    EXPECT_EQ(encode_stream(got), encode_stream(oracle));
  }

  // And the filtered aggregates agree across formats (v2 post-filters
  // after decode, v3 pushes the predicate below the decoder).
  ew::storage::ScanScratch s2, s3;
  const auto agg2 = ew::analytics::aggregate_day(lakes.v2, day, s2, &pred);
  const auto agg3 = ew::analytics::aggregate_day(lakes.v3, day, s3, &pred);
  EXPECT_EQ(agg2.scan.records_delivered, agg3.scan.records_delivered);
  EXPECT_GT(agg3.scan.blocks_pruned, 0u);
  expect_aggregates_equal(agg2.aggregate, agg3.aggregate);
}

TEST(ColumnarGolden, ParallelPredicateScanMatchesSerial) {
  const CivilDate day{2015, 9, 9};
  const auto records = paper_day(day);
  TempDir dir;
  ew::storage::DataLake lake(dir.path);
  ASSERT_TRUE(lake.append(day, records).has_value());
  ASSERT_GT(lake.load_day_blocks(day).blocks().size(), 1u);

  const auto pred = ew::storage::ScanPredicate::for_service(ew::services::ServiceId::kNetflix);
  ew::storage::ScanScratch scratch;
  const auto serial = ew::analytics::aggregate_day(lake, day, scratch, &pred);
  ThreadPool pool(4);
  const auto parallel = ew::analytics::aggregate_day_parallel(lake, day, pool, pred);

  EXPECT_EQ(parallel.scan.records_delivered, serial.scan.records_delivered);
  EXPECT_EQ(parallel.scan.blocks_pruned, serial.scan.blocks_pruned);
  EXPECT_EQ(parallel.scan.errc, serial.scan.errc);
  expect_aggregates_equal(parallel.aggregate, serial.aggregate);
}

TEST(ColumnarGolden, QueryRawFallbackMatchesRollupAnswers) {
  const CivilDate day1{2015, 10, 1}, day2{2015, 10, 2};
  TempDir lake_dir, full_dir, partial_dir;
  ew::storage::DataLake lake(lake_dir.path);
  ASSERT_TRUE(lake.append(day1, paper_day(day1)).has_value());
  ASSERT_TRUE(lake.append(day2, paper_day(day2)).has_value());

  ThreadPool pool(4);
  ew::query::RollupStore full(full_dir.path, lake);
  ASSERT_TRUE(full.build(pool).errors.empty());
  ew::query::RollupStore partial(partial_dir.path, lake);
  const std::vector<CivilDate> only_day1 = {day1};
  ASSERT_TRUE(partial.build(only_day1, pool).errors.empty());

  for (const auto metric : {ew::query::Metric::kBytes, ew::query::Metric::kFlows}) {
    for (const auto dim : {ew::query::Dimension::kService, ew::query::Dimension::kProtocol}) {
      ew::query::QuerySpec spec;
      spec.metric = metric;
      spec.dimension = dim;
      spec.from = day1;
      spec.to = day2;
      const auto want = ew::query::run_query(full, spec);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(want.days_merged, 2u);

      // Without the fallback, day2 is simply missing.
      auto miss = ew::query::run_query(partial, spec);
      EXPECT_EQ(miss.days_merged, 1u);
      ASSERT_EQ(miss.missing_days.size(), 1u);

      // With it, the missing day is answered from the raw lake — and the
      // rows are exactly what full rollups produce.
      spec.raw_fallback = true;
      const auto got = ew::query::run_query(partial, spec);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.days_merged, 2u);
      EXPECT_EQ(got.days_scanned_raw, 1u);
      EXPECT_TRUE(got.missing_days.empty());
      ASSERT_EQ(got.rows.size(), want.rows.size());
      for (std::size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].key, want.rows[i].key);
        EXPECT_EQ(got.rows[i].value, want.rows[i].value);
      }

      // A group-restricted service query pushes its service mask down.
      if (dim == ew::query::Dimension::kService) {
        ew::query::QuerySpec one = spec;
        one.group = static_cast<std::uint32_t>(ew::services::ServiceId::kYouTube);
        const auto got_one = ew::query::run_query(partial, one);
        ew::query::QuerySpec one_full = one;
        one_full.raw_fallback = false;
        const auto want_one = ew::query::run_query(full, one_full);
        ASSERT_EQ(got_one.rows.size(), want_one.rows.size());
        for (std::size_t i = 0; i < got_one.rows.size(); ++i) {
          EXPECT_EQ(got_one.rows[i].value, want_one.rows[i].value);
        }
      }
    }
  }
}
